#![forbid(unsafe_code)]

//! Regenerate the paper's evaluation tables and series.
//!
//! ```sh
//! cargo run --release -p jinjing-bench --bin figures -- all
//! cargo run --release -p jinjing-bench --bin figures -- fig4a fig4c table5
//! cargo run --release -p jinjing-bench --bin figures -- fig4b --large
//! ```
//!
//! Subcommands: `fig4a` `fig4b` `fig4c` `fig4d` `table5` `depth` `spans`
//! `lint` `par` `incr` `solve` `serve` `trace` `plan` `shard` `all`.
//! `--large` additionally runs the large-network fix (minutes, matching the
//! paper's ~10-minute ceiling for check+fix).
//! `par` accepts `--small` (restrict to the small WAN; the CI smoke step)
//! and `--bench-out <path>` (write the machine-readable `BENCH_check.json`).
//! `incr` replays the perturbation as a per-slot edit stream through a
//! [`jinjing_core::incr::CheckSession`] against per-step cold checks and
//! honours the same flags (`--bench-out` writes `BENCH_incr.json`).
//! `solve` is the warm-solver microbench: the perturbation's distinct ACL
//! chains × rule-derived packet classes, asked cold (fresh
//! encode-and-solve per query, the pre-warm-layer regime) and warm
//! (one [`jinjing_core::warm::ScopeSolver`], assumption-scoped re-queries),
//! with per-stage encode-vs-solve splits and fix's minimal-change search
//! contrasted Ascend vs Descend (`--bench-out` writes `BENCH_solve.json`;
//! `--small` restricts to the small WAN, the default is medium).
//! `serve` stands a loopback `jinjing-serve` daemon up and fires
//! concurrent `/v1/check` load at it, asserting every response
//! byte-identical to the CLI rendering (`--bench-out` writes
//! `BENCH_serve.json`).
//! `plan` synthesizes certified rollout plans for the seeded update
//! campaigns ([`jinjing_wan::rollout`]), asserting the rendered bytes
//! are thread-count-independent (`--bench-out` writes `BENCH_plan.json`).
//! `shard` runs the class-space partition table behind the sharded
//! coordinator: one full-scan check split over 1/2/4/8 consistent-hash
//! shards ([`jinjing_acl::shard::ShardSpec`]), proving the per-shard
//! dirty-pair and solver-query counts sum *exactly* to the single-process
//! baseline — zero duplicated queries at any width (`--bench-out` writes
//! `BENCH_shard.json`).

use jinjing_acl::{Acl, MatchSpec, PacketSet};
use jinjing_bench::{checkfix_scenario, control_open_task, migration_task, wan, PERTURBATIONS};
use jinjing_core::check::{check, check_configs, CheckConfig, CheckReport};
use jinjing_core::engine::{run as engine_run, EngineConfig};
use jinjing_core::fix::{fix, FixConfig, MinimizeSearch};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::incr::{CheckSession, Delta, IncrConfig};
use jinjing_core::qcache::QueryCache;
use jinjing_core::warm::{ScopeSolver, WarmStats};
use jinjing_core::Encoding;
use jinjing_solver::aclenc::encode;
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::{CircuitBuilder, HeaderVars};
use jinjing_lai::printer::statement_count;
use jinjing_lai::Command;
use jinjing_wan::scenarios;
use jinjing_wan::NetSize;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Median of three runs for sub-second operations; single run otherwise.
fn timed<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t = Instant::now();
    let out = f();
    let first = t.elapsed();
    if first > Duration::from_millis(500) {
        return (first, out);
    }
    let mut times = vec![first];
    let mut last = out;
    for _ in 0..2 {
        let t = Instant::now();
        last = f();
        times.push(t.elapsed());
    }
    times.sort();
    (times[1], last)
}

fn fig4a() {
    println!("\n## Figure 4a — check turnaround (ms), ± differential rules\n");
    println!("| network | perturb | basic ms | basic rules | diff ms | diff rules | verdict |");
    println!("|---------|---------|----------|-------------|---------|------------|---------|");
    for size in NetSize::ALL {
        let net = wan(size);
        for fraction in PERTURBATIONS {
            let sc = checkfix_scenario(&net, fraction, Command::Check);
            let basic_cfg = CheckConfig {
                differential: false,
                ..CheckConfig::default()
            };
            let (tb, rb) = timed(|| check(&net.net, &sc.task, &basic_cfg).expect("check"));
            let diff_cfg = CheckConfig::default();
            let (td, rd) = timed(|| check(&net.net, &sc.task, &diff_cfg).expect("check"));
            assert_eq!(
                rb.outcome.is_consistent(),
                rd.outcome.is_consistent(),
                "variants disagree"
            );
            println!(
                "| {} | {:>2.0}% | {:>8} | {:>11} | {:>7} | {:>10} | {} |",
                size.label(),
                fraction * 100.0,
                ms(tb),
                rb.encoded_rules,
                ms(td),
                rd.encoded_rules,
                if rd.outcome.is_consistent() {
                    "consistent"
                } else {
                    "inconsistent"
                },
            );
        }
    }
}

fn fig4b(include_large: bool) {
    use jinjing_core::FixStrategy;
    println!("\n## Figure 4b — fix turnaround (ms): batch engine vs the paper's iterative loop\n");
    println!("| network | perturb | batch ms | iterative ms | neighborhoods | rules added |");
    println!("|---------|---------|----------|--------------|---------------|-------------|");
    let mut sizes = vec![NetSize::Small, NetSize::Medium];
    if include_large {
        sizes.push(NetSize::Large);
    }
    for size in sizes {
        let net = wan(size);
        for fraction in PERTURBATIONS {
            let sc = checkfix_scenario(&net, fraction, Command::Fix);
            let batch_cfg = FixConfig {
                strategy: FixStrategy::ExactBatch,
                ..FixConfig::default()
            };
            let (tb, plan) = timed(|| fix(&net.net, &sc.task, &batch_cfg).expect("fix"));
            // The paper-faithful CEGIS loop runs minutes at large scale
            // (exactly the paper's ~10-minute ceiling); only time it on the
            // small/medium networks.
            let iterative = if size == NetSize::Large {
                "minutes".to_string()
            } else {
                let (ti, _) =
                    timed(|| fix(&net.net, &sc.task, &FixConfig::default()).expect("fix"));
                ms(ti)
            };
            println!(
                "| {} | {:>2.0}% | {:>8} | {:>12} | {:>13} | {:>11} |",
                size.label(),
                fraction * 100.0,
                ms(tb),
                iterative,
                plan.neighborhoods.len(),
                plan.added_rules.len(),
            );
        }
    }
    if !include_large {
        println!("\n(large omitted — run with --large)");
    }
}

fn fig4c() {
    println!("\n## Figure 4c — generate (migration): phases and output size\n");
    println!("| network | mode | total ms | derive-AEC | solve | synthesize | AECs (split) | rows | rules |");
    println!("|---------|------|----------|------------|-------|------------|--------------|------|-------|");
    for size in NetSize::ALL {
        let net = wan(size);
        let task = migration_task(&net);
        for (label, optimize) in [("optimized", true), ("basic", false)] {
            let cfg = GenerateConfig {
                optimize,
                ..GenerateConfig::default()
            };
            let (t, r) = timed(|| generate(&net.net, &task, &cfg).expect("generate"));
            println!(
                "| {} | {} | {:>8} | {:>10} | {:>5} | {:>10} | {:>4} ({}) | {:>4} | {:>5} |",
                size.label(),
                label,
                ms(t),
                ms(r.phases.derive_aec),
                ms(r.phases.solve),
                ms(r.phases.synthesize),
                r.aec_count,
                r.aecs_split,
                r.rows,
                r.rules_final,
            );
        }
    }
}

fn fig4d() {
    println!("\n## Figure 4d — generate under control-open (k prefixes/device)\n");
    println!("| network | k | total ms | derive-AEC | solve | synthesize | AECs | rules |");
    println!("|---------|---|----------|------------|-------|------------|------|-------|");
    for size in NetSize::ALL {
        let net = wan(size);
        for k in [1usize, 2, 4] {
            let task = control_open_task(&net, k);
            let cfg = GenerateConfig::default();
            let (t, r) = timed(|| generate(&net.net, &task, &cfg).expect("generate"));
            println!(
                "| {} | {} | {:>8} | {:>10} | {:>5} | {:>10} | {:>4} | {:>5} |",
                size.label(),
                k,
                ms(t),
                ms(r.phases.derive_aec),
                ms(r.phases.solve),
                ms(r.phases.synthesize),
                r.aec_count,
                r.rules_final,
            );
        }
    }
}

fn table5() {
    println!("\n## Table 5 — LAI program statement counts\n");
    println!("| network | check&fix | migration | open 1 | open 2 | open 4 |");
    println!("|---------|-----------|-----------|--------|--------|--------|");
    for size in NetSize::ALL {
        let net = wan(size);
        let cf = scenarios::checkfix(&net, 0.03, jinjing_bench::SEED, Command::Check);
        let mig = scenarios::migration(&net);
        let opens: Vec<usize> = [1usize, 2, 4]
            .iter()
            .map(|&k| {
                statement_count(&scenarios::control_open(&net, k, jinjing_bench::SEED).program)
            })
            .collect();
        println!(
            "| {} | {:>9} | {:>9} | {:>6} | {:>6} | {:>6} |",
            size.label(),
            statement_count(&cf.program),
            statement_count(&mig.program),
            opens[0],
            opens[1],
            opens[2],
        );
    }
}

fn depth() {
    println!("\n## §9 — solver effort on the medium check workload\n");
    println!("| encoding | rules | encoded rules | decisions | propagations | conflicts | max depth | ms |");
    println!("|----------|-------|---------------|-----------|--------------|-----------|-----------|----|");
    let net = wan(NetSize::Medium);
    let sc = checkfix_scenario(&net, 0.03, Command::Check);
    for (enc_label, encoding) in [
        ("sequential", Encoding::Sequential),
        ("tree", Encoding::Tree),
    ] {
        for (diff_label, differential) in [("full", false), ("diff", true)] {
            let cfg = CheckConfig {
                differential,
                encoding,
                ..CheckConfig::default()
            };
            let (t, r) = timed(|| check(&net.net, &sc.task, &cfg).expect("check"));
            let s = r.solver_stats;
            println!(
                "| {enc_label}+{diff_label} | {} | {} | {} | {} | {} | {} | {} |",
                r.total_rules,
                r.encoded_rules,
                s.decisions,
                s.propagations,
                s.conflicts,
                s.max_depth,
                ms(t),
            );
        }
    }
}

/// Render one node of the span tree, Figures-9-to-11 style: indented
/// phase labels with entry counts and summed wall-clock.
fn render_span(node: &jinjing_obs::SpanSnapshot, depth: usize, parent_ns: u64) {
    if depth > 0 {
        let pct = if parent_ns > 0 {
            format!("{:>5.1}%", 100.0 * node.total_ns as f64 / parent_ns as f64)
        } else {
            // The synthetic root records no time of its own.
            "     —".to_string()
        };
        println!(
            "{:indent$}{:<28} {:>6}x {:>10.3} ms  {pct}",
            "",
            node.name,
            node.count,
            node.total_ns as f64 / 1e6,
            indent = (depth - 1) * 2,
        );
    }
    let base = if depth == 0 { 0 } else { node.total_ns };
    for c in &node.children {
        render_span(c, depth + 1, base);
    }
}

/// Per-phase breakdown of check + fix + generate on the medium workload,
/// sourced from the observability span tree (the same spans that populate
/// `CheckReport::t_*`, `FixPlan::phases` and `--metrics-out`).
fn spans() {
    println!("\n## Span breakdown — medium workload (one engine run per primitive)\n");
    let net = wan(NetSize::Medium);
    let runs: Vec<(&str, jinjing_core::Task)> = vec![
        ("check", checkfix_scenario(&net, 0.03, Command::Check).task),
        ("fix", checkfix_scenario(&net, 0.03, Command::Fix).task),
        ("generate", migration_task(&net)),
    ];
    for (label, task) in runs {
        let cfg = EngineConfig::default();
        let report = engine_run(&net.net, &task, &cfg).expect(label);
        println!("### {label}\n");
        println!(
            "{:<30} {:>7} {:>13}  {:>6}",
            "span", "count", "total", "of parent"
        );
        render_span(&report.obs.spans, 0, 0);
        let snap = &report.obs;
        if let Some(h) = snap.histogram("solver.decisions") {
            println!(
                "\nsolver: {} queries; decisions p50/p90/p99 = {}/{}/{}, conflicts total = {}",
                snap.counter("solver.queries"),
                h.p50,
                h.p90,
                h.p99,
                snap.histogram("solver.conflicts").map_or(0, |h| h.sum),
            );
        }
        println!();
    }
}

/// Whole-config static analysis throughput on the preset WANs, with and
/// without CDCL confirmation of full-shadow findings.
fn lint() {
    use jinjing_core::engine::ReportKind;
    println!("\n## Static analysis — whole-config lint on the preset WANs\n");
    println!(
        "| network | slots | rules | heuristic ms | +solver ms | diagnostics | solver-confirmed |"
    );
    println!(
        "|---------|-------|-------|--------------|------------|-------------|------------------|"
    );
    for size in NetSize::ALL {
        let net = wan(size);
        let slots = net.config.slots().len();
        let rules: usize = net
            .config
            .slots()
            .iter()
            .filter_map(|&s| net.config.get(s))
            .map(|a| a.rules().len())
            .sum();
        let heuristic_cfg = jinjing_lint::LintConfig {
            solver_confirm: false,
            ..jinjing_lint::LintConfig::default()
        };
        let (th, _) =
            timed(|| jinjing_core::engine::lint(&net.net, &net.config, None, &heuristic_cfg));
        let solver_cfg = jinjing_lint::LintConfig::default();
        let (ts, report) =
            timed(|| jinjing_core::engine::lint(&net.net, &net.config, None, &solver_cfg));
        let ReportKind::Lint(r) = &report.kind else {
            unreachable!("engine::lint returns a lint report")
        };
        println!(
            "| {} | {:>5} | {:>5} | {:>12} | {:>10} | {:>11} | {:>16} |",
            size.label(),
            slots,
            rules,
            ms(th),
            ms(ts),
            r.len(),
            report.obs.counter("lint.solver_confirmed"),
        );
    }

    println!("\n## Cross-tenant lint — 4 seeded tenants, 6 controls each (seed 7)\n");
    println!(
        "| network | stmt pairs | conflicts | certified | resolved | unresolved | wall ms |"
    );
    println!(
        "|---------|------------|-----------|-----------|----------|------------|---------|"
    );
    for size in NetSize::ALL {
        let net = wan(size);
        let tenants: Vec<jinjing_lint::TenantIntent> =
            jinjing_wan::multi_tenant_intents(&net, 4, 6, 7)
                .into_iter()
                .map(|(name, program)| jinjing_lint::TenantIntent::new(name, program))
                .collect();
        // Rank the first two tenants so the preview has both resolved and
        // unresolved contests to report.
        let priority: Vec<String> = tenants.iter().take(2).map(|t| t.tenant.clone()).collect();
        let timing_cfg = jinjing_lint::LintConfig::default();
        let (t, _) = timed(|| jinjing_lint::lint_multi(&tenants, &priority, &timing_cfg));
        // Fresh collector for the counters: `timed` may rerun its closure,
        // which would multiply them.
        let cfg = jinjing_lint::LintConfig::default();
        let mut report = jinjing_lint::lint_multi(&tenants, &priority, &cfg);
        report.sort();
        let snap = cfg.obs.snapshot();
        println!(
            "| {} | {:>10} | {:>9} | {:>9} | {:>8} | {:>10} | {:>7} |",
            size.label(),
            snap.counter("lint.multi.stmt_pairs"),
            snap.counter("lint.multi.conflicts"),
            snap.counter("lint.multi.certified"),
            snap.counter("lint.multi.resolved"),
            snap.counter("lint.multi.unresolved"),
            ms(t),
        );
    }
}

/// Everything in a check report except wall-clock durations. The scaling
/// table asserts this rendering is byte-identical across every (threads,
/// cache-temperature) cell — the same contract `tests/par_determinism.rs`
/// pins on the running example, here enforced on the synthetic WANs.
fn canon_check(r: &CheckReport) -> String {
    format!(
        "outcome={:?} fec={} paths={} stats={:?} encoded={} total={}",
        r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
    )
}

/// One measured cell of the scaling table.
struct ParRun {
    threads: usize,
    cold: Duration,
    warm: Duration,
    cold_hits: u64,
    cold_misses: u64,
    warm_hits: u64,
    warm_misses: u64,
    /// Cold-run span totals in ns: `check.preprocess`, `check.refine`,
    /// `check.paths`, `check.solve` — the encode-vs-solve split that
    /// explains the scaling curve (only the solve stage fans out).
    stage_ns: [u64; 4],
}

/// Total ns recorded under spans named `name`, summed over the tree.
fn span_sum(node: &jinjing_obs::SpanSnapshot, name: &str) -> u64 {
    let own = if node.name == name { node.total_ns } else { 0 };
    own + node.children.iter().map(|c| span_sum(c, name)).sum::<u64>()
}

/// The four check stages of one run's span tree, in table order.
fn stage_split(snap: &jinjing_obs::Snapshot) -> [u64; 4] {
    ["check.preprocess", "check.refine", "check.paths", "check.solve"]
        .map(|n| span_sum(&snap.spans, n))
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Serialize the small-WAN scaling runs as `BENCH_check.json`.
///
/// The writer is jinjing-obs's hand-rolled serializer; keys are emitted in
/// sorted order within every object, so two runs of the same build differ
/// only in the `wall_ms` / speedup numbers — the shape is byte-stable and
/// strict-JSON (CI parses it back with `python3 -m json.tool` offline and
/// serde_json online).
fn bench_json(network: &str, report: &CheckReport, runs: &[ParRun]) -> String {
    let mut w = jinjing_obs::json::JsonWriter::new();
    let wall = |d: Duration| (d.as_secs_f64() * 1e6).round() / 1e3; // µs-rounded ms
    w.begin_object();
    w.key("benchmark");
    w.string("check");
    w.key("fec_count");
    w.u64(report.fec_count as u64);
    w.key("network");
    w.string(network);
    w.key("outcome");
    w.string(if report.outcome.is_consistent() {
        "consistent"
    } else {
        "inconsistent"
    });
    w.key("paths_checked");
    w.u64(report.paths_checked as u64);
    w.key("perturbation");
    w.f64(0.03);
    w.key("runs");
    w.begin_array();
    let serial = runs.first().map_or(Duration::ZERO, |r| r.cold);
    for r in runs {
        w.begin_object();
        for (label, wall_ms, hits, misses) in [
            ("cold", wall(r.cold), r.cold_hits, r.cold_misses),
            ("warm", wall(r.warm), r.warm_hits, r.warm_misses),
        ] {
            w.key(label);
            w.begin_object();
            w.key("cache_hit_rate");
            w.f64((hit_rate(hits, misses) * 1e4).round() / 1e4);
            w.key("cache_hits");
            w.u64(hits);
            w.key("cache_misses");
            w.u64(misses);
            w.key("wall_ms");
            w.f64(wall_ms);
            w.end_object();
        }
        w.key("speedup_vs_serial");
        w.f64((serial.as_secs_f64() / r.cold.as_secs_f64().max(1e-9) * 100.0).round() / 100.0);
        w.key("stages");
        w.begin_object();
        let stage_ms = |ns: u64| (ns as f64 / 1e3).round() / 1e3; // µs-rounded ms
        w.key("paths_ms");
        w.f64(stage_ms(r.stage_ns[2]));
        w.key("preprocess_ms");
        w.f64(stage_ms(r.stage_ns[0]));
        w.key("refine_ms");
        w.f64(stage_ms(r.stage_ns[1]));
        w.key("solve_ms");
        w.f64(stage_ms(r.stage_ns[3]));
        w.end_object();
        w.key("threads");
        w.u64(r.threads as u64);
        w.end_object();
    }
    w.end_array();
    w.key("total_rules");
    w.u64(report.total_rules as u64);
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// Thread-scaling of the parallel check engine plus query-cache behaviour.
///
/// Each preset WAN runs the same 3% perturbation check at 1/2/4/8 worker
/// threads: once against a fresh query cache (*cold* — this is the honest
/// scaling number) and once more against the now-populated cache (*warm* —
/// every stage-1 query replays from the cache). The canonical report must
/// be byte-identical across all cells; only the wall clock may move.
fn par(include_large: bool, small_only: bool, bench_out: Option<&str>) {
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    println!("\n## Parallel scaling — check at 3% perturbation, 1/2/4/8 threads\n");
    println!("| network | threads | cold ms | speedup | warm ms | cold hit rate | warm hit rate |");
    println!("|---------|---------|---------|---------|---------|---------------|---------------|");
    let mut sizes = vec![NetSize::Small];
    if !small_only {
        sizes.push(NetSize::Medium);
        if include_large {
            sizes.push(NetSize::Large);
        }
    }
    for size in sizes {
        let net = wan(size);
        let sc = checkfix_scenario(&net, 0.03, Command::Check);
        let mut baseline: Option<String> = None;
        let mut runs: Vec<ParRun> = Vec::new();
        let mut last_report: Option<CheckReport> = None;
        for threads in THREADS {
            // Cold: a fresh cache per invocation so `timed`'s median-of-3
            // never accidentally measures a warmed run. The cache (and the
            // counters) of the *last* invocation survive for the warm pass.
            let mut kept: Option<(Arc<QueryCache>, u64, u64, [u64; 4])> = None;
            let (t_cold, r_cold) = timed(|| {
                let cache = Arc::new(QueryCache::new());
                let cfg = CheckConfig {
                    threads,
                    cache: Some(Arc::clone(&cache)),
                    ..CheckConfig::default()
                };
                let r = check(&net.net, &sc.task, &cfg).expect("check");
                kept = Some((
                    cache,
                    cfg.obs.counter_get("check.cache_hit"),
                    cfg.obs.counter_get("check.cache_miss"),
                    stage_split(&cfg.obs.snapshot()),
                ));
                r
            });
            let (cache, cold_hits, cold_misses, stage_ns) = kept.expect("timed ran at least once");
            // Warm: replay against the populated cache. Counters accumulate
            // per config, so give each invocation a fresh collector and keep
            // the last one's totals.
            let mut warm_counts = (0u64, 0u64);
            let (t_warm, r_warm) = timed(|| {
                let cfg = CheckConfig {
                    threads,
                    cache: Some(Arc::clone(&cache)),
                    ..CheckConfig::default()
                };
                let r = check(&net.net, &sc.task, &cfg).expect("check");
                warm_counts = (
                    cfg.obs.counter_get("check.cache_hit"),
                    cfg.obs.counter_get("check.cache_miss"),
                );
                r
            });
            let canon = canon_check(&r_cold);
            assert_eq!(
                canon,
                canon_check(&r_warm),
                "{}: cache replay diverged at {threads} threads",
                size.label()
            );
            match &baseline {
                None => baseline = Some(canon),
                Some(b) => assert_eq!(
                    &canon,
                    b,
                    "{}: report diverged at {threads} threads",
                    size.label()
                ),
            }
            runs.push(ParRun {
                threads,
                cold: t_cold,
                warm: t_warm,
                cold_hits,
                cold_misses,
                warm_hits: warm_counts.0,
                warm_misses: warm_counts.1,
                stage_ns,
            });
            last_report = Some(r_cold);
        }
        let serial = runs[0].cold;
        for r in &runs {
            println!(
                "| {} | {:>7} | {:>7} | {:>6.2}x | {:>7} | {:>12.1}% | {:>12.1}% |",
                size.label(),
                r.threads,
                ms(r.cold),
                serial.as_secs_f64() / r.cold.as_secs_f64().max(1e-9),
                ms(r.warm),
                100.0 * hit_rate(r.cold_hits, r.cold_misses),
                100.0 * hit_rate(r.warm_hits, r.warm_misses),
            );
        }
        // Per-stage split of the cold runs: only the solve stage fans out
        // across workers, so the solve share bounds the achievable speedup
        // (Amdahl) — this is where a sub-1x `speedup_vs_serial` comes from.
        println!("\nper-stage split (cold runs, span totals):\n");
        println!("| network | threads | preprocess ms | refine ms | paths ms | solve ms | solve share |");
        println!("|---------|---------|---------------|-----------|----------|----------|-------------|");
        for r in &runs {
            let total: u64 = r.stage_ns.iter().sum();
            println!(
                "| {} | {:>7} | {:>13.1} | {:>9.1} | {:>8.1} | {:>8.1} | {:>10.1}% |",
                size.label(),
                r.threads,
                r.stage_ns[0] as f64 / 1e6,
                r.stage_ns[1] as f64 / 1e6,
                r.stage_ns[2] as f64 / 1e6,
                r.stage_ns[3] as f64 / 1e6,
                100.0 * r.stage_ns[3] as f64 / (total as f64).max(1.0),
            );
        }
        println!();
        if size == NetSize::Small {
            if let Some(path) = bench_out {
                let report = last_report.expect("at least one run");
                let json = bench_json(size.label(), &report, &runs);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("\n(wrote {path})");
            }
        }
    }
    if small_only {
        println!("\n(medium/large omitted — drop --small, add --large)");
    } else if !include_large {
        println!("\n(large omitted — run with --large)");
    }
}

/// Aggregates of one incremental replay (one WAN size).
struct IncrRun {
    steps: usize,
    applied: usize,
    class_count: usize,
    total_pairs: usize,
    dirty_pairs_total: usize,
    dirty_pairs_max: usize,
    dirty_classes_total: usize,
    cold: Duration,
    warm: Duration,
}

/// Serialize the small-WAN incremental replay as `BENCH_incr.json`
/// (sorted keys, strict JSON, byte-stable shape — see [`bench_json`]).
fn incr_json(network: &str, r: &IncrRun) -> String {
    let mut w = jinjing_obs::json::JsonWriter::new();
    let wall = |d: Duration| (d.as_secs_f64() * 1e6).round() / 1e3; // µs-rounded ms
    w.begin_object();
    w.key("applied");
    w.u64(r.applied as u64);
    w.key("benchmark");
    w.string("incr");
    w.key("class_count");
    w.u64(r.class_count as u64);
    w.key("cold_wall_ms");
    w.f64(wall(r.cold));
    w.key("dirty_classes_total");
    w.u64(r.dirty_classes_total as u64);
    w.key("dirty_pairs_max");
    w.u64(r.dirty_pairs_max as u64);
    w.key("dirty_pairs_total");
    w.u64(r.dirty_pairs_total as u64);
    w.key("incr_wall_ms");
    w.f64(wall(r.warm));
    w.key("network");
    w.string(network);
    // The full per-step workload a cold check considers before Theorem 4.1
    // pruning: `dirty ≪ pairs_ceiling` is the point of the session engine.
    w.key("pairs_ceiling_total");
    w.u64((r.steps * r.total_pairs) as u64);
    w.key("perturbation");
    w.f64(0.03);
    w.key("rejected");
    w.u64((r.steps - r.applied) as u64);
    w.key("speedup");
    w.f64((r.cold.as_secs_f64() / r.warm.as_secs_f64().max(1e-9) * 100.0).round() / 100.0);
    w.key("steps");
    w.u64(r.steps as u64);
    w.key("total_pairs");
    w.u64(r.total_pairs as u64);
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// Decompose a before→after perturbation into single-slot deltas, in
/// deterministic (sorted-slot) order — the edit stream an operator would
/// deploy change by change.
fn per_slot_deltas(before: &jinjing_net::AclConfig, after: &jinjing_net::AclConfig) -> Vec<Delta> {
    let mut slots = before.slots();
    slots.extend(after.slots());
    slots.sort();
    slots.dedup();
    let mut deltas = Vec::new();
    for slot in slots {
        match (before.get(slot), after.get(slot)) {
            (b, a) if b == a => {}
            (_, Some(a)) => deltas.push(Delta::new().set(slot, a.clone())),
            (_, None) => deltas.push(Delta::new().clear(slot)),
        }
    }
    deltas
}

/// Incremental re-check vs per-step cold checks on the preset WANs: the
/// 3% perturbation replayed one slot at a time through a persistent
/// [`CheckSession`]. Every step's session report is asserted byte-identical
/// to the cold check of the same before/after pair (the
/// `tests/incr_oracle.rs` contract, enforced here on the synthetic WANs),
/// so the table only ever shows a wall-clock difference.
fn incr(small_only: bool, bench_out: Option<&str>) {
    println!("\n## Incremental re-check — 3% perturbation as a per-slot edit stream\n");
    println!("| network | steps | applied | classes | pairs/step | dirty pairs (max) | cold ms | incr ms | speedup |");
    println!("|---------|-------|---------|---------|------------|-------------------|---------|---------|---------|");
    let mut sizes = vec![NetSize::Small];
    if !small_only {
        sizes.push(NetSize::Medium);
    }
    for size in sizes {
        let net = wan(size);
        let sc = checkfix_scenario(&net, 0.03, Command::Check);
        let deltas = per_slot_deltas(&sc.task.before, &sc.task.after);

        // Cold baseline: a fresh default config (fresh cache) per step,
        // base advancing exactly as the session's default policy does.
        let mut cold_canons = Vec::with_capacity(deltas.len());
        let mut base = sc.task.before.clone();
        let t = Instant::now();
        for delta in &deltas {
            let after = delta.applied_to(&base);
            let r = check_configs(
                &net.net,
                &sc.task.scope,
                &base,
                &after,
                &sc.task.controls,
                &CheckConfig::default(),
            )
            .expect("cold check");
            if r.outcome.is_consistent() {
                base = after;
            }
            cold_canons.push(canon_check(&r));
        }
        let cold = t.elapsed();

        // Incremental: one persistent session over the same stream.
        let mut session = CheckSession::with_configs(
            &net.net,
            sc.task.scope.clone(),
            sc.task.controls.clone(),
            sc.task.before.clone(),
            CheckConfig::default(),
            IncrConfig::default(),
        )
        .expect("session opens");
        let total_pairs = session.total_pairs();
        let mut run = IncrRun {
            steps: deltas.len(),
            applied: 0,
            class_count: session.class_count(),
            total_pairs,
            dirty_pairs_total: 0,
            dirty_pairs_max: 0,
            dirty_classes_total: 0,
            cold,
            warm: Duration::ZERO,
        };
        let t = Instant::now();
        for (i, delta) in deltas.iter().enumerate() {
            let r = session.recheck(delta).expect("recheck");
            assert_eq!(
                canon_check(&r.report),
                cold_canons[i],
                "{}: session step {i} diverged from the cold check",
                size.label()
            );
            if r.applied {
                run.applied += 1;
            }
            run.dirty_pairs_total += r.incr.dirty_pairs;
            run.dirty_pairs_max = run.dirty_pairs_max.max(r.incr.dirty_pairs);
            run.dirty_classes_total += r.incr.dirty_classes;
        }
        run.warm = t.elapsed();
        assert_eq!(session.base(), &base, "bases converge across the stream");
        println!(
            "| {} | {:>5} | {:>7} | {:>7} | {:>10} | {:>11} ({:>3}) | {:>7} | {:>7} | {:>6.2}x |",
            size.label(),
            run.steps,
            run.applied,
            run.class_count,
            run.total_pairs,
            run.dirty_pairs_total,
            run.dirty_pairs_max,
            ms(run.cold),
            ms(run.warm),
            run.cold.as_secs_f64() / run.warm.as_secs_f64().max(1e-9),
        );
        if size == NetSize::Small {
            if let Some(path) = bench_out {
                let json = incr_json(size.label(), &run);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("\n(wrote {path})");
            }
        }
    }
    if small_only {
        println!("\n(medium omitted — drop --small)");
    }
}

/// One fix run under a [`MinimizeSearch`] strategy.
struct SearchRun {
    builders: u64,
    solves: u64,
    wall: Duration,
}

/// Aggregates of the warm-solver microbench.
struct SolveRun {
    queries: usize,
    chains: usize,
    cold_encode: Duration,
    cold_solve: Duration,
    warm_first: Duration,
    warm_steady: Duration,
    warm: WarmStats,
    ascend: SearchRun,
    descend: SearchRun,
}

/// Serialize the warm-solver microbench as `BENCH_solve.json` (sorted
/// keys, strict JSON, byte-stable shape — see [`bench_json`]).
fn solve_json(network: &str, r: &SolveRun) -> String {
    let mut w = jinjing_obs::json::JsonWriter::new();
    let wall = |d: Duration| (d.as_secs_f64() * 1e6).round() / 1e3; // µs-rounded ms
    let cold = r.cold_encode + r.cold_solve;
    w.begin_object();
    w.key("benchmark");
    w.string("solve");
    w.key("chains");
    w.u64(r.chains as u64);
    w.key("cold");
    w.begin_object();
    w.key("encode_ms");
    w.f64(wall(r.cold_encode));
    w.key("solve_ms");
    w.f64(wall(r.cold_solve));
    w.key("wall_ms");
    w.f64(wall(cold));
    w.end_object();
    w.key("fix");
    w.begin_object();
    let search = |w: &mut jinjing_obs::json::JsonWriter, s: &SearchRun| {
        w.begin_object();
        w.key("builders");
        w.u64(s.builders);
        w.key("solves");
        w.u64(s.solves);
        w.key("wall_ms");
        w.f64(wall(s.wall));
        w.end_object();
    };
    w.key("ascend");
    search(&mut w, &r.ascend);
    // A per-bound cold loop constructs one solver per probed k: the
    // ascending search's solve count is exactly that construction count,
    // which both warm searches beat with one builder per neighborhood.
    w.key("cold_loop_builders");
    w.u64(r.ascend.solves);
    w.key("descend");
    search(&mut w, &r.descend);
    w.end_object();
    w.key("network");
    w.string(network);
    w.key("perturbation");
    w.f64(0.03);
    w.key("queries");
    w.u64(r.queries as u64);
    w.key("speedup");
    w.f64((cold.as_secs_f64() / r.warm_steady.as_secs_f64().max(1e-9) * 100.0).round() / 100.0);
    w.key("warm");
    w.begin_object();
    w.key("builds");
    w.u64(r.warm.builds);
    w.key("pin_encodes");
    w.u64(r.warm.pin_encodes);
    w.key("pin_reuses");
    w.u64(r.warm.pin_reuses);
    w.key("replays");
    w.u64(r.warm.replays);
    w.end_object();
    w.key("warm_first_wall_ms");
    w.f64(wall(r.warm_first));
    w.key("warm_wall_ms");
    w.f64(wall(r.warm_steady));
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// One cold class-pinned Eq. 3 query, timed per stage: a fresh builder,
/// the full chain re-encoded, the class asserted at the root, one solve —
/// exactly the pre-warm-layer regime (and byte-for-byte the cold path's
/// construction order). Returns (encode wall, solve wall, verdict).
fn cold_query(
    chain: &[(&Acl, &Acl)],
    class: &PacketSet,
    encoding: Encoding,
) -> (Duration, Duration, SolveResult) {
    let t0 = Instant::now();
    let mut builder = CircuitBuilder::new();
    let h = HeaderVars::new(&mut builder);
    let mut c_before = Vec::with_capacity(chain.len());
    let mut c_after = Vec::with_capacity(chain.len());
    for (b, a) in chain {
        c_before.push(encode(&mut builder, &h, b, encoding));
        c_after.push(encode(&mut builder, &h, a, encoding));
    }
    let cp = builder.and(&c_before);
    let cp2 = builder.and(&c_after);
    let eq = builder.iff(cp, cp2);
    builder.assert(!eq);
    let in_class = h.in_set(&mut builder, class);
    builder.assert(in_class);
    let t_encode = t0.elapsed();
    let t1 = Instant::now();
    let result = builder.solve();
    (t_encode, t1.elapsed(), result)
}

/// Up to `cap` distinct non-trivial packet classes from an ACL's own rule
/// regions — the natural "does the disagreement fall in here?" questions.
fn rule_classes(acl: &Acl, cap: usize) -> Vec<PacketSet> {
    let mut out: Vec<PacketSet> = Vec::new();
    for r in acl.rules() {
        if r.matches == MatchSpec::any() {
            continue; // default-action tail: the base query already asks it
        }
        let set = PacketSet::from_cube(r.matches.cube());
        if out.iter().any(|s| *s == set) {
            continue;
        }
        out.push(set);
        if out.len() == cap {
            break;
        }
    }
    out
}

/// Warm-solver microbench: cold rebuild-per-query vs one persistent
/// [`ScopeSolver`] answering the same stream by assumption-scoped
/// re-queries, plus fix's minimal-change search Ascend vs Descend on one
/// warm solver vs the per-bound cold loop. Verdicts are cross-checked
/// query by query; `--bench-out` writes `BENCH_solve.json`.
fn solve_bench(small_only: bool, bench_out: Option<&str>) {
    const MAX_CHAINS: usize = 24;
    let size = if small_only {
        NetSize::Small
    } else {
        NetSize::Medium
    };
    let encoding = CheckConfig::default().encoding;
    println!("\n## Warm solver — cold rebuild vs assumption re-query, 3% perturbation\n");
    let net = wan(size);
    let sc = checkfix_scenario(&net, 0.03, Command::Check);

    // The perturbation's distinct edited (before, after) ACL pairs…
    let mut slots = sc.task.before.slots();
    slots.extend(sc.task.after.slots());
    slots.sort();
    slots.dedup();
    let mut pairs: Vec<(Acl, Acl)> = Vec::new();
    let mut distinct = 0usize;
    for slot in slots {
        if let (Some(b), Some(a)) = (sc.task.before.get(slot), sc.task.after.get(slot)) {
            if b != a && !pairs.iter().any(|(pb, pa)| pb == b && pa == a) {
                distinct += 1;
                if pairs.len() < MAX_CHAINS {
                    pairs.push((b.clone(), a.clone()));
                }
            }
        }
    }
    if distinct > pairs.len() {
        println!("(workload capped at {} of {distinct} distinct edited pairs)\n", pairs.len());
    }
    assert!(!pairs.is_empty(), "the perturbation must edit at least one ACL");
    // …as single-hop chains plus two-hop combinations (paths traverse
    // several slots), each crossed with classes drawn from the pair's own
    // rule regions.
    let mut chains: Vec<Vec<(Acl, Acl)>> = pairs.iter().map(|p| vec![p.clone()]).collect();
    for w2 in pairs.chunks(2) {
        if let [x, y] = w2 {
            chains.push(vec![x.clone(), y.clone()]);
        }
    }
    let mut queries: Vec<(usize, PacketSet)> = Vec::new();
    for (ci, chain) in chains.iter().enumerate() {
        let (b0, a0) = &chain[0];
        let mut classes = rule_classes(a0, 2);
        for c in rule_classes(b0, 2) {
            if !classes.contains(&c) {
                classes.push(c);
            }
        }
        if classes.is_empty() {
            classes.push(PacketSet::full());
        }
        for c in classes {
            queries.push((ci, c));
        }
    }

    // Cold pass: every query pays a fresh construction (encode) + solve.
    let chain_refs = |ci: usize| -> Vec<(&Acl, &Acl)> {
        chains[ci].iter().map(|(b, a)| (b, a)).collect()
    };
    let mut cold_encode = Duration::ZERO;
    let mut cold_solve = Duration::ZERO;
    let mut verdicts = Vec::with_capacity(queries.len());
    for (ci, class) in &queries {
        let (te, ts, v) = cold_query(&chain_refs(*ci), class, encoding);
        cold_encode += te;
        cold_solve += ts;
        verdicts.push(v);
    }

    // Warm passes on one ScopeSolver: the first pass builds each family
    // once and encodes each class pin; the measured steady-state pass is
    // all selector reuse + `solve_with`, no encoding at all.
    let ws = ScopeSolver::new();
    let t = Instant::now();
    for (ci, class) in &queries {
        ws.query_in_class(&chain_refs(*ci), None, encoding, None, class);
    }
    let warm_first = t.elapsed();
    let t = Instant::now();
    for (i, (ci, class)) in queries.iter().enumerate() {
        let got = ws.query_in_class(&chain_refs(*ci), None, encoding, None, class);
        assert_eq!(
            got.result, verdicts[i],
            "warm re-query diverged from the cold verdict on query {i}"
        );
        if let Some(m) = &got.model {
            assert!(class.contains(m), "warm witness escaped its class on query {i}");
        }
    }
    let warm_steady = t.elapsed();
    let warm = ws.stats();
    assert_eq!(warm.builds as usize, chains.len(), "one family per chain");
    assert!(
        warm.pin_reuses as usize >= queries.len(),
        "the steady pass must reuse every selector"
    );

    // Fix's minimal-change search: both strategies on one warm placement
    // solver, against the per-bound cold loop they replace (one solver
    // construction per probed k — the ascending search's solve count).
    let fsc = checkfix_scenario(&net, 0.03, Command::Fix);
    let search = |strategy: MinimizeSearch| -> (SearchRun, usize) {
        let cfg = FixConfig {
            minimize_search: strategy,
            ..FixConfig::default()
        };
        let t = Instant::now();
        let plan = fix(&net.net, &fsc.task, &cfg).expect("fix");
        let wall = t.elapsed();
        let snap = cfg.check.obs.snapshot();
        (
            SearchRun {
                builders: snap.counter("fix.place_builders"),
                solves: snap.counter("fix.place_solves"),
                wall,
            },
            plan.added_rules.len(),
        )
    };
    let (ascend, a_rules) = search(MinimizeSearch::Ascend);
    let (descend, d_rules) = search(MinimizeSearch::Descend);
    assert_eq!(a_rules, d_rules, "both searches must be equally minimal");
    assert_eq!(ascend.builders, descend.builders, "one builder per neighborhood");
    assert!(
        descend.solves <= ascend.solves,
        "descend ({}) must not out-solve ascend ({})",
        descend.solves,
        ascend.solves
    );
    assert!(
        ascend.builders < ascend.solves,
        "warm search must construct strictly fewer solvers ({}) than the \
         per-bound cold loop ({})",
        ascend.builders,
        ascend.solves
    );

    let run = SolveRun {
        queries: queries.len(),
        chains: chains.len(),
        cold_encode,
        cold_solve,
        warm_first,
        warm_steady,
        warm,
        ascend,
        descend,
    };
    let cold = run.cold_encode + run.cold_solve;
    let speedup = cold.as_secs_f64() / run.warm_steady.as_secs_f64().max(1e-9);
    println!("| network | queries | chains | cold encode ms | cold solve ms | cold ms | warm-up ms | warm ms | speedup |");
    println!("|---------|---------|--------|----------------|---------------|---------|------------|---------|---------|");
    println!(
        "| {} | {:>7} | {:>6} | {:>14} | {:>13} | {:>7} | {:>10} | {:>7} | {:>6.2}x |",
        size.label(),
        run.queries,
        run.chains,
        ms(run.cold_encode),
        ms(run.cold_solve),
        ms(cold),
        ms(run.warm_first),
        ms(run.warm_steady),
        speedup,
    );
    println!("\n## Fix minimal-change search — one warm solver vs the per-bound cold loop\n");
    println!("| search | placement builders | solves | per-k cold builders | wall ms |");
    println!("|--------|--------------------|--------|---------------------|---------|");
    for (label, s) in [("ascend", &run.ascend), ("descend", &run.descend)] {
        println!(
            "| {label} | {:>18} | {:>6} | {:>19} | {:>7} |",
            s.builders,
            s.solves,
            run.ascend.solves,
            ms(s.wall),
        );
    }
    if !small_only {
        assert!(
            speedup >= 2.0,
            "warm re-queries must be at least 2x faster than cold rebuilds \
             on the medium WAN (got {speedup:.2}x)"
        );
    }
    if let Some(path) = bench_out {
        let json = solve_json(size.label(), &run);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\n(wrote {path})");
    }
    if small_only {
        println!("\n(medium omitted — drop --small)");
    }
}

/// Aggregates of one daemon load run.
struct ServeRun {
    clients: usize,
    requests: usize,
    workers: usize,
    bodies_identical: bool,
    shed: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    /// p99 of the flight-recorder pass (`X-Jinjing-Trace: 1` requests);
    /// the tracing overhead budget is judged against `p99_us`.
    p99_traced_us: u64,
    /// How many requests ran with the recorder armed.
    traced_requests: usize,
    throughput_rps: f64,
    session_delta_us: u64,
}

/// `p` in [0,1] over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serialize the daemon load run as `BENCH_serve.json` (sorted keys,
/// strict JSON — see [`incr_json`]). Latencies are machine-dependent;
/// the shape and the `bodies_identical` invariant are not.
fn serve_json(r: &ServeRun) -> String {
    let mut w = jinjing_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("benchmark");
    w.string("serve");
    w.key("bodies_identical");
    w.bool(r.bodies_identical);
    w.key("clients");
    w.u64(r.clients as u64);
    w.key("network");
    w.string("figure1");
    w.key("p50_us");
    w.u64(r.p50_us);
    w.key("p90_us");
    w.u64(r.p90_us);
    w.key("p99_traced_us");
    w.u64(r.p99_traced_us);
    w.key("p99_us");
    w.u64(r.p99_us);
    w.key("requests");
    w.u64(r.requests as u64);
    w.key("session_delta_us");
    w.u64(r.session_delta_us);
    w.key("shed");
    w.u64(r.shed);
    w.key("throughput_rps");
    w.f64((r.throughput_rps * 100.0).round() / 100.0);
    w.key("traced_requests");
    w.u64(r.traced_requests as u64);
    w.key("workers");
    w.u64(r.workers as u64);
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// Daemon throughput on the Figure 1 running example: K concurrent
/// loopback clients firing `POST /v1/check`, every response asserted
/// byte-identical (the serving contract under concurrency), plus one
/// session open→delta→delete round. `--bench-out` writes
/// `BENCH_serve.json`.
fn serve_bench(bench_out: Option<&str>) {
    use jinjing_serve::{client, ServeConfig, Server};

    const INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    const WORKERS: usize = 4;

    println!("\n## Daemon throughput — concurrent /v1/check on the running example\n");
    let f = jinjing_core::figure1::Figure1::new();
    let cfg = ServeConfig {
        workers: WORKERS,
        queue: 256,
        deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let srv = Server::bind(f.net, f.config, cfg).expect("bind");
    let addr = srv.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || srv.run().expect("serve"));

    // The reference bytes every response must equal.
    let f2 = jinjing_core::figure1::Figure1::new();
    let want =
        jinjing_core::query::run_query(&f2.net, &f2.config, INTENT, &EngineConfig::default())
            .expect("reference run")
            .plan
            .to_canonical_json();

    let t = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut bodies_identical = true;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = &addr;
                let want = &want;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(PER_CLIENT);
                    let mut ok = true;
                    for _ in 0..PER_CLIENT {
                        let t = Instant::now();
                        let r = client::call(
                            addr,
                            "POST",
                            "/v1/check",
                            &[],
                            INTENT.as_bytes(),
                            Duration::from_secs(60),
                        )
                        .expect("call");
                        lat.push(t.elapsed().as_micros() as u64);
                        ok &= r.status == 200 && r.body_text() == *want;
                    }
                    (lat, ok)
                })
            })
            .collect();
        for h in handles {
            let (lat, ok) = h.join().expect("client thread");
            all_latencies.extend(lat);
            bodies_identical &= ok;
        }
    });
    let wall = t.elapsed();
    assert!(
        bodies_identical,
        "a daemon response diverged from the CLI bytes"
    );

    // Traced pass: the same request with the flight recorder armed. The
    // bytes must not move; only the side-channel capture (and a little
    // latency, budgeted in scripts/perf_gate.py) may.
    const TRACED: usize = 25;
    let trace_header = [("X-Jinjing-Trace".to_string(), "1".to_string())];
    let mut traced_latencies: Vec<u64> = Vec::with_capacity(TRACED);
    let mut trace_id = String::new();
    for _ in 0..TRACED {
        let t = Instant::now();
        let r = client::call(
            &addr,
            "POST",
            "/v1/check",
            &trace_header,
            INTENT.as_bytes(),
            Duration::from_secs(60),
        )
        .expect("traced call");
        traced_latencies.push(t.elapsed().as_micros() as u64);
        assert_eq!(r.status, 200);
        assert_eq!(
            r.body_text(),
            want,
            "a traced response diverged from the CLI bytes"
        );
        trace_id = r.header("x-jinjing-trace-id").expect("trace id").to_string();
    }
    let r = client::call(
        &addr,
        "GET",
        &format!("/v1/trace/{trace_id}"),
        &[],
        b"",
        Duration::from_secs(60),
    )
    .expect("trace fetch");
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert!(
        r.body_text().contains("\"traceEvents\""),
        "trace body is not Chrome trace_event JSON"
    );

    // One session round: open → delta batch → delete.
    let t = Instant::now();
    let r = client::call(
        &addr,
        "POST",
        "/v1/sessions",
        &[],
        INTENT.as_bytes(),
        Duration::from_secs(60),
    )
    .expect("session open");
    assert_eq!(r.status, 200, "{}", r.body_text());
    let id = r
        .body_text()
        .split("\"id\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next().map(str::to_string))
        .expect("session id");
    let r = client::call(
        &addr,
        "POST",
        &format!("/v1/sessions/{id}/delta"),
        &[],
        b"step tighten\nset D:2 deny dst 2.0.0.0/8; deny dst 1.0.0.0/8\n",
        Duration::from_secs(60),
    )
    .expect("session delta");
    assert_eq!(r.status, 200, "{}", r.body_text());
    let session_delta_us = t.elapsed().as_micros() as u64;
    client::call(
        &addr,
        "DELETE",
        &format!("/v1/sessions/{id}"),
        &[],
        b"",
        Duration::from_secs(60),
    )
    .expect("session delete");

    client::call(
        &addr,
        "POST",
        "/v1/shutdown",
        &[],
        b"",
        Duration::from_secs(60),
    )
    .expect("shutdown");
    let summary = handle.join().expect("daemon thread");

    all_latencies.sort_unstable();
    traced_latencies.sort_unstable();
    let run = ServeRun {
        clients: CLIENTS,
        requests: CLIENTS * PER_CLIENT,
        workers: WORKERS,
        bodies_identical,
        shed: summary.shed,
        p50_us: percentile(&all_latencies, 0.50),
        p90_us: percentile(&all_latencies, 0.90),
        p99_us: percentile(&all_latencies, 0.99),
        p99_traced_us: percentile(&traced_latencies, 0.99),
        traced_requests: TRACED,
        throughput_rps: (CLIENTS * PER_CLIENT) as f64 / wall.as_secs_f64().max(1e-9),
        session_delta_us,
    };
    println!("| clients | requests | workers | p50 µs | p90 µs | p99 µs | traced p99 µs | rps | shed |");
    println!("|---------|----------|---------|--------|--------|--------|---------------|-----|------|");
    println!(
        "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {} |",
        run.clients,
        run.requests,
        run.workers,
        run.p50_us,
        run.p90_us,
        run.p99_us,
        run.p99_traced_us,
        run.throughput_rps,
        run.shed,
    );
    if let Some(path) = bench_out {
        let json = serve_json(&run);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\n(wrote {path})");
    }
}

/// Flight-recorder smoke: run the Figure 1 check with the recorder armed
/// (4-wide), assert the plan bytes match an untraced run, print the span
/// summary, and dump the Chrome `trace_event` JSON to `--trace-out`.
fn trace_dump(out_path: Option<&str>) {
    const INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";
    println!("\n## Flight recorder — Figure 1 check capture\n");
    let f = jinjing_core::figure1::Figure1::new();
    let plain =
        jinjing_core::query::run_query(&f.net, &f.config, INTENT, &EngineConfig::default())
            .expect("reference run")
            .plan
            .to_canonical_json();
    let cfg = EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    };
    let tctx = jinjing_obs::TraceCtx::new(&jinjing_obs::trace_id_of(INTENT));
    cfg.obs.attach_trace_ctx(tctx.clone());
    let traced = jinjing_core::query::run_query(&f.net, &f.config, INTENT, &cfg)
        .expect("traced run")
        .plan
        .to_canonical_json();
    assert_eq!(plain, traced, "tracing must not perturb the plan bytes");
    print!("{}", tctx.summary());
    if let Some(path) = out_path {
        std::fs::write(path, tctx.to_chrome_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\n(wrote {path})");
    }
}

/// Aggregates of one planner run (one rollout scenario).
struct PlanRun {
    kind: &'static str,
    feasible: bool,
    steps: usize,
    waves: usize,
    certificates: usize,
    core: usize,
    prefix_attempts: usize,
    prefix_checks: usize,
    pruned_witness: usize,
    pruned_memo: usize,
    dirty_pairs: usize,
    pairs_ceiling: usize,
    wall: Duration,
}

/// Serialize the planner bench as `BENCH_plan.json` (sorted keys, strict
/// JSON, byte-stable shape — see [`bench_json`]). `plan_wall_ms` is the
/// perf-gate headline; `dirty_pairs_total` vs `pairs_ceiling_total` is
/// the session-probe pruning claim (every prefix state re-verified cold
/// would pay the full ceiling).
fn plan_json(network: &str, runs: &[PlanRun], wall: Duration) -> String {
    let mut w = jinjing_obs::json::JsonWriter::new();
    let wall_ms = |d: Duration| (d.as_secs_f64() * 1e6).round() / 1e3; // µs-rounded ms
    let sum = |f: fn(&PlanRun) -> usize| runs.iter().map(f).sum::<usize>() as u64;
    w.begin_object();
    w.key("benchmark");
    w.string("plan");
    w.key("certificates");
    w.u64(sum(|r| r.certificates));
    w.key("dirty_pairs_total");
    w.u64(sum(|r| r.dirty_pairs));
    w.key("network");
    w.string(network);
    w.key("pairs_ceiling_total");
    w.u64(sum(|r| r.pairs_ceiling));
    w.key("plan_wall_ms");
    w.f64(wall_ms(wall));
    w.key("prefix_attempts_total");
    w.u64(sum(|r| r.prefix_attempts));
    w.key("prefix_checks_total");
    w.u64(sum(|r| r.prefix_checks));
    w.key("pruned_total");
    w.u64(sum(|r| r.pruned_witness + r.pruned_memo));
    w.key("scenarios");
    w.begin_array();
    for r in runs {
        w.begin_object();
        w.key("certificates");
        w.u64(r.certificates as u64);
        w.key("core");
        w.u64(r.core as u64);
        w.key("dirty_pairs");
        w.u64(r.dirty_pairs as u64);
        w.key("feasible");
        w.bool(r.feasible);
        w.key("kind");
        w.string(r.kind);
        w.key("pairs_ceiling");
        w.u64(r.pairs_ceiling as u64);
        w.key("prefix_attempts");
        w.u64(r.prefix_attempts as u64);
        w.key("prefix_checks");
        w.u64(r.prefix_checks as u64);
        w.key("pruned_memo");
        w.u64(r.pruned_memo as u64);
        w.key("pruned_witness");
        w.u64(r.pruned_witness as u64);
        w.key("steps");
        w.u64(r.steps as u64);
        w.key("wall_ms");
        w.f64(wall_ms(r.wall));
        w.key("waves");
        w.u64(r.waves as u64);
        w.end_object();
    }
    w.end_array();
    w.key("steps");
    w.u64(sum(|r| r.steps));
    w.key("waves");
    w.u64(sum(|r| r.waves));
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// Rollout planning over the seeded update campaigns: synthesize a
/// certified plan for each [`RolloutKind`] on the small WAN, assert the
/// rendered plan bytes are thread-count-independent, and tabulate the
/// search effort (prefix states probed vs attempts pruned by witnesses
/// and the dead-set memo). `--bench-out` writes `BENCH_plan.json`.
fn plan_bench(bench_out: Option<&str>) {
    use jinjing_core::plan::{synthesize, PlanConfig, PlanOutcome};
    use jinjing_wan::{rollout_scenario, RolloutKind};
    println!("\n## Rollout planner — certified waves over the update campaigns\n");
    println!("| scenario | steps | waves | verdict | probes/attempts | pruned | dirty pairs | ceiling | wall ms |");
    println!("|----------|-------|-------|---------|-----------------|--------|-------------|---------|---------|");
    let mut runs = Vec::new();
    let t_all = Instant::now();
    for kind in RolloutKind::ALL {
        let sc = rollout_scenario(NetSize::Small, kind, 17);
        let synth = |threads: usize| {
            let cfg = CheckConfig {
                threads,
                ..CheckConfig::default()
            };
            synthesize(
                &sc.wan.net,
                &sc.wan.scope(),
                &sc.controls,
                &sc.base,
                &sc.target,
                &cfg,
                &PlanConfig::default(),
            )
            .expect("plan")
        };
        let (wall, rp) = timed(|| synth(1));
        let wide = synth(4);
        assert_eq!(
            jinjing_core::query::render_rollout_json(&sc.wan.net, &rp),
            jinjing_core::query::render_rollout_json(&sc.wan.net, &wide),
            "{}: plan bytes diverged at 4 threads",
            kind.label()
        );
        assert_eq!(
            sc.feasible,
            matches!(rp.outcome, PlanOutcome::Feasible { .. }),
            "{}: unexpected verdict",
            kind.label()
        );
        let (waves, certificates, core) = match &rp.outcome {
            PlanOutcome::Feasible {
                waves,
                certificates,
            } => (waves.len(), certificates.len(), 0),
            PlanOutcome::Infeasible { core } => (0, 0, core.len()),
        };
        let run = PlanRun {
            kind: kind.label(),
            feasible: sc.feasible,
            steps: rp.steps.len(),
            waves,
            certificates,
            core,
            prefix_attempts: rp.stats.prefix_attempts,
            prefix_checks: rp.stats.prefix_checks,
            pruned_witness: rp.stats.pruned_witness,
            pruned_memo: rp.stats.pruned_memo,
            dirty_pairs: rp.stats.dirty_pairs,
            pairs_ceiling: rp.stats.pairs_ceiling,
            wall,
        };
        println!(
            "| {} | {:>5} | {:>5} | {} | {:>6}/{:>6} | {:>6} | {:>11} | {:>7} | {:>7} |",
            run.kind,
            run.steps,
            run.waves,
            rp.verdict(),
            run.prefix_checks,
            run.prefix_attempts,
            run.pruned_witness + run.pruned_memo,
            run.dirty_pairs,
            run.pairs_ceiling,
            ms(run.wall),
        );
        runs.push(run);
    }
    let wall = t_all.elapsed();
    if let Some(path) = bench_out {
        let json = plan_json(NetSize::Small.label(), &runs, wall);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\n(wrote {path})");
    }
}

/// One fan-out width of the shard partition table: per-shard dirty-pair
/// counts, solver-query counts, and walls.
struct ShardRow {
    shards: usize,
    dirty_pairs: Vec<usize>,
    queries: Vec<u64>,
    walls: Vec<Duration>,
}

/// Serialize the shard partition table as `BENCH_shard.json` (sorted
/// keys, strict JSON — see [`incr_json`]). `shard_wall_ms` — the perf
/// gate's metric — is the slowest shard's wall at width 4: the modeled
/// parallel wall with four backends. The partition counts are
/// machine-independent; the walls are not.
fn shard_json(
    network: &str,
    baseline_pairs: usize,
    baseline_queries: u64,
    baseline_wall: Duration,
    rows: &[ShardRow],
) -> String {
    let wall_ms = |d: Duration| (d.as_secs_f64() * 1e6).round() / 1e3; // µs-rounded ms
    let exact = rows.iter().all(|r| {
        r.dirty_pairs.iter().sum::<usize>() == baseline_pairs
            && r.queries.iter().sum::<u64>() == baseline_queries
    });
    let shard_wall = rows
        .iter()
        .find(|r| r.shards == 4)
        .or_else(|| rows.last())
        .map(|r| r.walls.iter().max().copied().unwrap_or_default())
        .unwrap_or_default();
    let mut w = jinjing_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("baseline");
    w.begin_object();
    w.key("dirty_pairs");
    w.u64(baseline_pairs as u64);
    w.key("queries");
    w.u64(baseline_queries);
    w.key("wall_ms");
    w.f64(wall_ms(baseline_wall));
    w.end_object();
    w.key("benchmark");
    w.string("shard");
    w.key("network");
    w.string(network);
    w.key("partition_exact");
    w.bool(exact);
    w.key("shard_wall_ms");
    w.f64(wall_ms(shard_wall));
    w.key("widths");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.key("dirty_pairs_max");
        w.u64(r.dirty_pairs.iter().max().copied().unwrap_or(0) as u64);
        w.key("dirty_pairs_sum");
        w.u64(r.dirty_pairs.iter().sum::<usize>() as u64);
        w.key("queries_sum");
        w.u64(r.queries.iter().sum::<u64>());
        w.key("shards");
        w.u64(r.shards as u64);
        w.key("wall_ms_max");
        w.f64(wall_ms(r.walls.iter().max().copied().unwrap_or_default()));
        w.key("wall_ms_sum");
        w.f64(wall_ms(r.walls.iter().sum::<Duration>()));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

/// A full-scan *consistent* check workload: the perturbation scenario's
/// modified slots rewritten so each differs from `before` syntactically
/// (two adjacent same-action rules swapped — decision-preserving) but not
/// semantically. Consistency matters for the partition proof: an
/// inconsistent check short-circuits at its first violation, so a shard
/// that owns no violation scans *more* of its slice than the unsharded
/// run did and the per-shard sums would not reconcile. A consistent check
/// scans everything everywhere, making the sums exact.
fn shard_workload(net: &jinjing_wan::Wan) -> jinjing_core::Task {
    use jinjing_lai::Command;
    let sc = checkfix_scenario(net, 0.03, Command::Check);
    let mut task = sc.task;
    let mut after = task.before.clone();
    let mut modified = Vec::new();
    for &slot in &task.modified {
        let Some(acl) = task.before.get(slot) else {
            continue;
        };
        let mut rules = acl.rules().to_vec();
        let Some(i) = (1..rules.len()).find(|&i| rules[i - 1].action == rules[i].action) else {
            continue;
        };
        rules.swap(i - 1, i);
        after.set(slot, Acl::new(rules, acl.default_action()));
        modified.push(slot);
    }
    assert!(
        !modified.is_empty(),
        "no modified slot had two adjacent same-action rules to swap"
    );
    task.after = after;
    task.modified = modified;
    task
}

/// The class-space partition table behind `jinjing-shard`: run one
/// full-scan check unsharded, then split the same workload over 1/2/4/8
/// consistent-hash shards (each shard a separate [`CheckConfig`] carrying
/// a [`ShardSpec`], exactly what a backend daemon evaluates) and prove
/// the per-shard dirty-pair and solver-query counts sum to the baseline —
/// the "zero duplicated solver queries" certificate for the coordinator's
/// fan-out. `--bench-out` writes `BENCH_shard.json`.
fn shard_bench(bench_out: Option<&str>) {
    use jinjing_acl::shard::ShardSpec;
    println!("\n## Sharded check — consistent-hash partition of the class space (small WAN)\n");
    let net = wan(NetSize::Small);
    let task = shard_workload(&net);

    let run_one = |shard: Option<ShardSpec>| -> (CheckReport, u64, Duration) {
        let cfg = CheckConfig {
            shard,
            ..CheckConfig::default()
        };
        let t = Instant::now();
        let r = check(&net.net, &task, &cfg).expect("check");
        let wall = t.elapsed();
        assert!(
            r.outcome.is_consistent(),
            "the shard workload must be consistent (full scan)"
        );
        (r, cfg.obs.snapshot().counter("solver.queries"), wall)
    };

    let (base, base_queries, base_wall) = run_one(None);
    assert!(base.paths_checked > 0, "workload dirties no pairs");
    assert!(base_queries > 0, "workload asks no solver queries");
    println!(
        "baseline: {} dirty pairs, {} solver queries, {} FECs, {} ms\n",
        base.paths_checked,
        base_queries,
        base.fec_count,
        ms(base_wall)
    );
    println!("| shards | pairs sum | queries sum | max shard pairs | wall ms (max) | wall ms (sum) |");
    println!("|--------|-----------|-------------|-----------------|---------------|---------------|");

    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let mut row = ShardRow {
            shards: n,
            dirty_pairs: Vec::with_capacity(n),
            queries: Vec::with_capacity(n),
            walls: Vec::with_capacity(n),
        };
        for i in 0..n {
            let (r, q, wall) = run_one(Some(ShardSpec::new(i, n)));
            row.dirty_pairs.push(r.paths_checked);
            row.queries.push(q);
            row.walls.push(wall);
        }
        let pairs_sum: usize = row.dirty_pairs.iter().sum();
        let queries_sum: u64 = row.queries.iter().sum();
        assert_eq!(
            pairs_sum, base.paths_checked,
            "{n} shards: dirty pairs were duplicated or dropped"
        );
        assert_eq!(
            queries_sum, base_queries,
            "{n} shards: solver queries were duplicated or dropped"
        );
        println!(
            "| {:>6} | {:>9} | {:>11} | {:>15} | {:>13} | {:>13} |",
            n,
            pairs_sum,
            queries_sum,
            row.dirty_pairs.iter().max().unwrap(),
            ms(row.walls.iter().max().copied().unwrap()),
            ms(row.walls.iter().sum::<Duration>()),
        );
        rows.push(row);
    }
    println!("\npartition exact at every width: zero duplicated solver queries");
    if let Some(path) = bench_out {
        let json = shard_json(
            NetSize::Small.label(),
            base.paths_checked,
            base_queries,
            base_wall,
            &rows,
        );
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("(wrote {path})");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let include_large = args.iter().any(|a| a == "--large");
    let small_only = args.iter().any(|a| a == "--small");
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().expect("--bench-out needs a path"));
    let wants = |name: &str| args.iter().any(|a| a == name) || args.iter().any(|a| a == "all");
    if args.is_empty() {
        eprintln!("usage: figures [fig4a] [fig4b] [fig4c] [fig4d] [table5] [depth] [spans] [lint] [par] [incr] [solve] [serve] [trace] [plan] [shard] [all] [--large] [--small] [--bench-out <path>] [--trace-out <path>]");
        std::process::exit(2);
    }
    println!("# Jinjing evaluation — regenerated tables");
    if wants("fig4a") {
        fig4a();
    }
    if wants("fig4b") {
        fig4b(include_large);
    }
    if wants("fig4c") {
        fig4c();
    }
    if wants("fig4d") {
        fig4d();
    }
    if wants("table5") {
        table5();
    }
    if wants("depth") {
        depth();
    }
    if wants("spans") {
        spans();
    }
    if wants("lint") {
        lint();
    }
    if wants("par") {
        par(include_large, small_only, bench_out.as_deref());
    }
    if wants("incr") {
        incr(small_only, bench_out.as_deref());
    }
    if wants("solve") {
        solve_bench(small_only, bench_out.as_deref());
    }
    if wants("serve") {
        serve_bench(bench_out.as_deref());
    }
    if wants("plan") {
        plan_bench(bench_out.as_deref());
    }
    if wants("shard") {
        shard_bench(bench_out.as_deref());
    }
    if wants("trace") {
        let trace_out = args
            .iter()
            .position(|a| a == "--trace-out")
            .map(|i| args.get(i + 1).cloned().expect("--trace-out needs a path"));
        trace_dump(trace_out.as_deref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_core::figure1::Figure1;
    use jinjing_core::Task;

    /// `BENCH_check.json` must parse under a real JSON parser, keep its
    /// sorted-key shape, and serialize byte-identically for the same input
    /// (CI diffs it across runs of the same build).
    #[test]
    fn bench_json_is_strict_and_stable() {
        let f = Figure1::new();
        let task = Task {
            scope: f.scope(),
            allow: Vec::new(),
            before: f.config.clone(),
            after: f.config.clone(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Check,
        };
        let r = check(&f.net, &task, &CheckConfig::default()).expect("check");
        let runs = vec![
            ParRun {
                threads: 1,
                cold: Duration::from_millis(10),
                warm: Duration::from_millis(5),
                cold_hits: 0,
                cold_misses: 4,
                warm_hits: 4,
                warm_misses: 0,
                stage_ns: [2_000_000, 500_000, 1_500_000, 6_000_000],
            },
            ParRun {
                threads: 4,
                cold: Duration::from_millis(4),
                warm: Duration::from_millis(2),
                cold_hits: 1,
                cold_misses: 3,
                warm_hits: 4,
                warm_misses: 0,
                stage_ns: [2_000_000, 500_000, 1_500_000, 6_000_000],
            },
        ];
        let json = bench_json("small", &r, &runs);
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert_eq!(v["benchmark"], "check");
        assert_eq!(v["network"], "small");
        assert_eq!(v["outcome"], "consistent");
        assert_eq!(v["runs"][1]["threads"], 4);
        assert!((v["runs"][1]["speedup_vs_serial"].as_f64().unwrap() - 2.5).abs() < 1e-9);
        assert!(v["runs"][0]["warm"]["cache_hit_rate"].as_f64().unwrap() > 0.0);
        assert!((v["runs"][0]["stages"]["solve_ms"].as_f64().unwrap() - 6.0).abs() < 1e-9);
        assert!((v["runs"][0]["stages"]["preprocess_ms"].as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(v["fec_count"].as_u64().unwrap(), r.fec_count as u64);
        assert_eq!(json, bench_json("small", &r, &runs), "byte-stable");
    }

    /// Same contract for `BENCH_solve.json`: strict JSON, sorted keys,
    /// byte-stable, and the derived numbers (speedup, the per-bound cold
    /// loop's construction count) are what CI's probe assumes.
    #[test]
    fn solve_json_is_strict_and_stable() {
        let run = SolveRun {
            queries: 60,
            chains: 20,
            cold_encode: Duration::from_millis(80),
            cold_solve: Duration::from_millis(20),
            warm_first: Duration::from_millis(90),
            warm_steady: Duration::from_millis(10),
            warm: WarmStats {
                families: 20,
                builds: 20,
                replays: 0,
                pin_encodes: 60,
                pin_reuses: 60,
                retracted_families: 0,
                retracted_pins: 0,
            },
            ascend: SearchRun {
                builders: 3,
                solves: 9,
                wall: Duration::from_millis(40),
            },
            descend: SearchRun {
                builders: 3,
                solves: 5,
                wall: Duration::from_millis(30),
            },
        };
        let json = solve_json("medium", &run);
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert_eq!(v["benchmark"], "solve");
        assert_eq!(v["network"], "medium");
        assert_eq!(v["queries"].as_u64().unwrap(), 60);
        assert!((v["cold"]["wall_ms"].as_f64().unwrap() - 100.0).abs() < 1e-9);
        assert!((v["speedup"].as_f64().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(v["fix"]["cold_loop_builders"].as_u64().unwrap(), 9);
        assert!(
            v["fix"]["descend"]["solves"].as_u64().unwrap()
                <= v["fix"]["ascend"]["solves"].as_u64().unwrap()
        );
        assert_eq!(v["warm"]["pin_reuses"].as_u64().unwrap(), 60);
        assert_eq!(json, solve_json("medium", &run), "byte-stable");
    }

    /// Same contract for `BENCH_incr.json`: strict JSON, sorted keys,
    /// byte-stable, and the ceiling arithmetic is what CI's probe assumes.
    #[test]
    fn incr_json_is_strict_and_stable() {
        let run = IncrRun {
            steps: 12,
            applied: 9,
            class_count: 40,
            total_pairs: 120,
            dirty_pairs_total: 85,
            dirty_pairs_max: 14,
            dirty_classes_total: 31,
            cold: Duration::from_millis(90),
            warm: Duration::from_millis(30),
        };
        let json = incr_json("small", &run);
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert_eq!(v["benchmark"], "incr");
        assert_eq!(v["network"], "small");
        assert_eq!(v["steps"].as_u64().unwrap(), 12);
        assert_eq!(v["rejected"].as_u64().unwrap(), 3);
        assert_eq!(v["pairs_ceiling_total"].as_u64().unwrap(), 12 * 120);
        assert!(
            v["dirty_pairs_total"].as_u64().unwrap() < v["pairs_ceiling_total"].as_u64().unwrap()
        );
        assert!((v["speedup"].as_f64().unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(json, incr_json("small", &run), "byte-stable");
    }

    /// Same contract for `BENCH_shard.json`: strict JSON, sorted keys,
    /// byte-stable, and the partition-exactness flag plus the gate metric
    /// (`shard_wall_ms`, slowest shard at width 4) are what CI and
    /// scripts/perf_gate.py assume.
    #[test]
    fn shard_json_is_strict_and_stable() {
        let rows = vec![
            ShardRow {
                shards: 1,
                dirty_pairs: vec![120],
                queries: vec![240],
                walls: vec![Duration::from_millis(100)],
            },
            ShardRow {
                shards: 4,
                dirty_pairs: vec![40, 30, 20, 30],
                queries: vec![80, 60, 40, 60],
                walls: vec![
                    Duration::from_millis(34),
                    Duration::from_millis(25),
                    Duration::from_millis(18),
                    Duration::from_millis(25),
                ],
            },
        ];
        let json = shard_json("small", 120, 240, Duration::from_millis(100), &rows);
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert_eq!(v["benchmark"], "shard");
        assert_eq!(v["network"], "small");
        assert_eq!(v["partition_exact"], true);
        assert_eq!(v["baseline"]["dirty_pairs"].as_u64().unwrap(), 120);
        assert_eq!(v["widths"][1]["shards"].as_u64().unwrap(), 4);
        assert_eq!(v["widths"][1]["dirty_pairs_sum"].as_u64().unwrap(), 120);
        assert_eq!(v["widths"][1]["queries_sum"].as_u64().unwrap(), 240);
        assert_eq!(v["widths"][1]["dirty_pairs_max"].as_u64().unwrap(), 40);
        assert!((v["shard_wall_ms"].as_f64().unwrap() - 34.0).abs() < 1e-9);
        assert_eq!(
            json,
            shard_json("small", 120, 240, Duration::from_millis(100), &rows),
            "byte-stable"
        );
        // A duplicated query flips the exactness flag.
        let dup = vec![ShardRow {
            shards: 2,
            dirty_pairs: vec![70, 60],
            queries: vec![140, 120],
            walls: vec![Duration::from_millis(50), Duration::from_millis(40)],
        }];
        let v: serde_json::Value = serde_json::from_str(&shard_json(
            "small",
            120,
            240,
            Duration::from_millis(100),
            &dup,
        ))
        .unwrap();
        assert_eq!(v["partition_exact"], false);
    }

    /// Same contract for `BENCH_plan.json`: strict JSON, sorted keys,
    /// byte-stable, and the aggregate arithmetic is what CI's probe and
    /// the perf gate assume.
    #[test]
    fn plan_json_is_strict_and_stable() {
        let runs = vec![
            PlanRun {
                kind: "drain",
                feasible: true,
                steps: 6,
                waves: 4,
                certificates: 4,
                core: 0,
                prefix_attempts: 30,
                prefix_checks: 12,
                pruned_witness: 14,
                pruned_memo: 4,
                dirty_pairs: 80,
                pairs_ceiling: 3000,
                wall: Duration::from_millis(70),
            },
            PlanRun {
                kind: "no_order",
                feasible: false,
                steps: 2,
                waves: 0,
                certificates: 0,
                core: 1,
                prefix_attempts: 5,
                prefix_checks: 4,
                pruned_witness: 1,
                pruned_memo: 0,
                dirty_pairs: 10,
                pairs_ceiling: 60,
                wall: Duration::from_millis(8),
            },
        ];
        let json = plan_json("small", &runs, Duration::from_millis(78));
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert_eq!(v["benchmark"], "plan");
        assert_eq!(v["network"], "small");
        assert_eq!(v["steps"].as_u64().unwrap(), 8);
        assert_eq!(v["waves"].as_u64().unwrap(), 4);
        assert_eq!(v["certificates"].as_u64().unwrap(), 4);
        assert_eq!(v["prefix_checks_total"].as_u64().unwrap(), 16);
        assert_eq!(v["pruned_total"].as_u64().unwrap(), 19);
        assert!((v["plan_wall_ms"].as_f64().unwrap() - 78.0).abs() < 1e-9);
        assert!(
            v["dirty_pairs_total"].as_u64().unwrap() * 2
                <= v["pairs_ceiling_total"].as_u64().unwrap()
        );
        assert_eq!(v["scenarios"][0]["kind"], "drain");
        assert_eq!(v["scenarios"][1]["feasible"], false);
        assert_eq!(v["scenarios"][1]["core"].as_u64().unwrap(), 1);
        assert_eq!(json, plan_json("small", &runs, Duration::from_millis(78)), "byte-stable");
    }
}
