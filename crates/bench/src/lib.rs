#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-bench
//!
//! The evaluation harness: Criterion benches for every figure of the
//! paper's §8, plus the [`figures`](../src/bin/figures.rs) binary that
//! regenerates the tables/series themselves (`cargo run --release -p
//! jinjing-bench --bin figures -- all`).
//!
//! Mapping to the paper:
//!
//! | bench / subcommand   | reproduces                                     |
//! |----------------------|------------------------------------------------|
//! | `fig4a_check`        | Fig. 4a — check turnaround, ±differential      |
//! | `fig4b_fix`          | Fig. 4b — fix turnaround, ±optimizations       |
//! | `fig4c_generate`     | Fig. 4c — migration phases, ±optimizations     |
//! | `fig4d_control`      | Fig. 4d — control-open generate, k ∈ {1,2,4}   |
//! | `encoding_ablation`  | §9 — solver search-effort reduction            |
//! | `substrates`         | micro-benchmarks of the set algebra / CDCL     |
//! | `figures table5`     | Table 5 — LAI program sizes                    |
//!
//! This module hosts the workload constructors shared by all of them, so a
//! bench never pays WAN construction inside the measured closure.

use jinjing_core::Task;
use jinjing_lai::Command;
use jinjing_wan::scenarios::Scenario;
use jinjing_wan::{build_wan, scenarios, NetSize, Wan, WanParams};

/// The perturbation fractions of Figure 4a/4b.
pub const PERTURBATIONS: [f64; 3] = [0.01, 0.03, 0.05];

/// Deterministic seed base for all bench workloads.
pub const SEED: u64 = 0xBE7C_0000;

/// Build (and route-warm) a preset WAN.
pub fn wan(size: NetSize) -> Wan {
    let wan = build_wan(&WanParams::preset(size));
    // Pre-warm the forwarding-predicate cache: routing state is static
    // input in the paper's setting, not part of the measured turnaround.
    for d in wan.net.topology().devices() {
        let _ = wan.net.forwarding_predicates(d);
    }
    wan
}

/// A check/fix workload at a perturbation fraction.
pub fn checkfix_scenario(wan: &Wan, fraction: f64, command: Command) -> Scenario {
    scenarios::checkfix(wan, fraction, SEED ^ fraction.to_bits(), command)
}

/// The migration workload (Figure 4c).
pub fn migration_task(wan: &Wan) -> Task {
    scenarios::migration(wan).task
}

/// The control-open workload (Figure 4d).
pub fn control_open_task(wan: &Wan, k: usize) -> Task {
    scenarios::control_open(wan, k, SEED).task
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_constructors_are_deterministic() {
        let a = wan(NetSize::Small);
        let b = wan(NetSize::Small);
        let sa = checkfix_scenario(&a, 0.03, Command::Check);
        let sb = checkfix_scenario(&b, 0.03, Command::Check);
        assert_eq!(sa.task.modified, sb.task.modified);
        let ma = migration_task(&a);
        assert_eq!(ma.allow.len(), a.edge_slots.len());
        let ca = control_open_task(&a, 2);
        assert_eq!(ca.controls.len(), 2 * a.all_edges().len());
    }
}
