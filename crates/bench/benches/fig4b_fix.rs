//! Figure 4b: fix turnaround time across perturbation fractions, with and
//! without the minimal-change/simplification optimizations.
//!
//! Paper shape: fix time grows with the perturbation fraction (more
//! neighborhoods to repair) and stays in the interactive range on the
//! small/medium networks. The large network is measured once by the
//! `figures fig4b` harness (a single large fix runs minutes there, exactly
//! as the paper's ~10-minute ceiling describes) rather than sampled by
//! Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinjing_bench::{checkfix_scenario, wan, PERTURBATIONS};
use jinjing_core::fix::{fix, FixConfig, FixStrategy};
use jinjing_lai::Command;
use jinjing_wan::NetSize;
use std::hint::black_box;

fn bench_fix(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_fix");
    group.sample_size(10);
    for size in [NetSize::Small, NetSize::Medium] {
        let net = wan(size);
        for fraction in PERTURBATIONS {
            let sc = checkfix_scenario(&net, fraction, Command::Fix);
            for (label, strategy) in [
                ("batch", FixStrategy::ExactBatch),
                ("iterative", FixStrategy::IterativeCegis),
            ] {
                let cfg = FixConfig {
                    strategy,
                    ..FixConfig::default()
                };
                let id = BenchmarkId::new(
                    format!("{}/{label}", size.label()),
                    format!("{}%", (fraction * 100.0) as u32),
                );
                group.bench_with_input(id, &sc.task, |b, task| {
                    b.iter(|| black_box(fix(&net.net, task, &cfg).expect("fix")));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fix);
criterion_main!(benches);
