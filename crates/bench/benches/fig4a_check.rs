//! Figure 4a: check turnaround time across network sizes and perturbation
//! fractions, with and without the differential-rule optimization.
//!
//! Paper shape to reproduce: turnaround roughly flat in the perturbation
//! fraction (check returns on the first violation), differential no slower
//! (and much lighter on encoded rules — see the `figures fig4a` table for
//! the rule-count column), everything well under a minute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinjing_bench::{checkfix_scenario, wan, PERTURBATIONS};
use jinjing_core::check::{check, CheckConfig};
use jinjing_lai::Command;
use jinjing_wan::NetSize;
use std::hint::black_box;

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_check");
    group.sample_size(10);
    for size in [NetSize::Small, NetSize::Medium, NetSize::Large] {
        let net = wan(size);
        for fraction in PERTURBATIONS {
            let sc = checkfix_scenario(&net, fraction, Command::Check);
            for (label, differential) in [("basic", false), ("differential", true)] {
                let cfg = CheckConfig {
                    differential,
                    ..CheckConfig::default()
                };
                let id = BenchmarkId::new(
                    format!("{}/{label}", size.label()),
                    format!("{}%", (fraction * 100.0) as u32),
                );
                group.bench_with_input(id, &sc.task, |b, task| {
                    b.iter(|| black_box(check(&net.net, task, &cfg).expect("check")));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
