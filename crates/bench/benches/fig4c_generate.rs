//! Figure 4c: generate (ACL migration) turnaround, with and without the
//! §5.5 optimizations.
//!
//! Paper shape: migration cost grows with network size; the optimizations
//! cut both the run time and (dramatically) the generated ACL length — the
//! `figures fig4c` table adds the phase split and rule counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinjing_bench::{migration_task, wan};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_wan::NetSize;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_generate");
    group.sample_size(10);
    for size in [NetSize::Small, NetSize::Medium] {
        let net = wan(size);
        let task = migration_task(&net);
        for (label, optimize) in [("optimized", true), ("basic", false)] {
            let cfg = GenerateConfig {
                optimize,
                ..GenerateConfig::default()
            };
            let id = BenchmarkId::new("migration", format!("{}/{label}", size.label()));
            group.bench_with_input(id, &task, |b, task| {
                b.iter(|| black_box(generate(&net.net, task, &cfg).expect("generate")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
