//! Figure 4d: generate under `control … open` intents, varying the number
//! of opened prefixes per edge device (the paper's 1/10/100, scaled to our
//! per-edge prefix budget as 1/2/4).
//!
//! Paper shape: deriving AECs costs slightly more than plain migration
//! (the control regions join the refinement), while the ACL-generation
//! phase is comparatively cheap; cost grows mildly with the program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinjing_bench::{control_open_task, wan};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_wan::NetSize;
use std::hint::black_box;

fn bench_control_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4d_control_open");
    group.sample_size(10);
    for size in [NetSize::Small, NetSize::Medium] {
        let net = wan(size);
        for k in [1usize, 2, 4] {
            let task = control_open_task(&net, k);
            let cfg = GenerateConfig::default();
            let id = BenchmarkId::new(size.label(), format!("open{k}"));
            group.bench_with_input(id, &task, |b, task| {
                b.iter(|| black_box(generate(&net.net, task, &cfg).expect("generate")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_control_open);
criterion_main!(benches);
