//! §9 ablation: how the two solver-side optimizations change the CDCL
//! engine's work on the check workload.
//!
//! - sequential vs balanced-tree decision-model encoding (search depth
//!   O(n) → O(log n));
//! - full vs differential-reduced ACLs (clause volume).
//!
//! Criterion measures wall-clock here; the `figures depth` subcommand
//! prints the matching solver statistics (decisions, propagations, maximum
//! decision depth, encoded rules) that §9 argues in terms of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinjing_bench::{checkfix_scenario, wan};
use jinjing_core::check::{check, CheckConfig};
use jinjing_core::Encoding;
use jinjing_lai::Command;
use jinjing_wan::NetSize;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_ablation");
    group.sample_size(10);
    let net = wan(NetSize::Medium);
    let sc = checkfix_scenario(&net, 0.03, Command::Check);
    for (enc_label, encoding) in [("seq", Encoding::Sequential), ("tree", Encoding::Tree)] {
        for (diff_label, differential) in [("full", false), ("diff", true)] {
            let cfg = CheckConfig {
                differential,
                encoding,
                ..CheckConfig::default()
            };
            let id = BenchmarkId::new("check", format!("{enc_label}+{diff_label}"));
            group.bench_with_input(id, &sc.task, |b, task| {
                b.iter(|| black_box(check(&net.net, task, &cfg).expect("check")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
