//! Micro-benchmarks of the substrates the primitives stand on: the exact
//! packet-set algebra, ACL compilation, the CDCL solver, FEC derivation and
//! path enumeration. Useful for catching regressions in the layers the
//! figure benches aggregate over.

use criterion::{criterion_group, criterion_main, Criterion};
use jinjing_acl::atoms::RefineLimits;
use jinjing_acl::{AclBuilder, PacketSet};
use jinjing_bench::wan;
use jinjing_net::derive_fecs;
use jinjing_solver::cdcl::Solver;
use jinjing_solver::lit::Lit;
use jinjing_wan::NetSize;
use std::hint::black_box;

fn acl_with_rules(n: usize) -> jinjing_acl::Acl {
    let mut b = AclBuilder::default_permit();
    for i in 0..n {
        b = b.deny_dst(&format!("10.{}.{}.0/24", i / 8, (i * 16) % 256));
    }
    b.build()
}

fn bench_set_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/set_algebra");
    let a = acl_with_rules(64).permit_set();
    let b = acl_with_rules(48).permit_set();
    group.bench_function("intersect_64x48_rule_sets", |bch| {
        bch.iter(|| black_box(a.intersect(&b)))
    });
    group.bench_function("subtract_64x48_rule_sets", |bch| {
        bch.iter(|| black_box(a.subtract(&b)))
    });
    group.bench_function("same_set_64x48", |bch| {
        bch.iter(|| black_box(a.same_set(&b)))
    });
    let frag = a.subtract(&b).union(&b.subtract(&a));
    group.bench_function("coalesce_fragmented", |bch| {
        bch.iter(|| black_box(frag.coalesce()))
    });
    group.finish();
}

fn bench_acl(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/acl");
    let acl = acl_with_rules(128);
    group.bench_function("permit_set_128_rules", |bch| {
        bch.iter(|| black_box(acl.permit_set()))
    });
    let other = acl_with_rules(127);
    group.bench_function("diff_128_vs_127", |bch| {
        bch.iter(|| black_box(jinjing_acl::diff::AclDiff::compute(&acl, &other)))
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/solver");
    // Pigeonhole 7→6: a classically hard small UNSAT instance.
    group.bench_function("pigeonhole_7_into_6", |bch| {
        bch.iter(|| {
            let mut s = Solver::new();
            let n = 7;
            let m = 6;
            let vars: Vec<Vec<jinjing_solver::lit::Var>> = (0..n)
                .map(|_| (0..m).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                let lits: Vec<Lit> = row.iter().map(|v| v.lit()).collect();
                s.add_clause(&lits);
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    for (x, y) in vars[a].iter().zip(&vars[b]) {
                        s.add_clause(&[!x.lit(), !y.lit()]);
                    }
                }
            }
            black_box(s.solve())
        })
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/network");
    group.sample_size(10);
    let net = wan(NetSize::Medium);
    let scope = net.scope();
    let universe: PacketSet = net
        .edge_prefixes
        .iter()
        .flatten()
        .fold(PacketSet::empty(), |acc, p| {
            acc.union(&jinjing_net::fib::prefix_set(p))
        });
    group.bench_function("fec_derivation_medium", |bch| {
        bch.iter(|| {
            black_box(
                derive_fecs(&net.net, &scope, &universe, RefineLimits::default()).expect("fecs"),
            )
        })
    });
    group.bench_function("path_enumeration_medium", |bch| {
        bch.iter(|| black_box(net.net.all_paths_for_class(&scope, &universe)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_set_algebra,
    bench_acl,
    bench_solver,
    bench_network
);
criterion_main!(benches);
