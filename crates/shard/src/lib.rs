#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-shard
//!
//! The sharded-verification coordinator: one resident network behind a
//! small HTTP front end, with the solver fan-out distributed over N
//! `jinjing-serve` backends by consistent-hashing the forwarding
//! equivalence classes ([`jinjing_acl::shard::ShardSpec`]).
//!
//! ```text
//! POST /v1/check     LAI intent text → canonical plan JSON
//! POST /v1/lint      optional intent text → lint report JSON
//! POST /v1/plan      intent [+ #target deltas] → rollout plan JSON
//! GET  /healthz      backend count + status, canonical JSON
//! GET  /metrics.json coordinator obs merged with backend snapshots
//! POST /v1/shutdown  stop accepting, return the summary
//! ```
//!
//! **Byte-identity at any shard count.** The coordinator runs the full
//! engine *locally* — parsing, resolution, candidate enumeration, witness
//! materialization, and every byte of rendering — and delegates only the
//! per-`(class, path)` solver fan-out through
//! [`jinjing_core::check::CheckDelegate`]. Each backend evaluates the
//! class slice its [`ShardSpec`](jinjing_acl::shard::ShardSpec) owns and
//! reports the shard-local minimum violating pair in **global**
//! coordinates; the coordinator takes the lexicographic minimum, re-solves
//! that single pair locally to materialize the witness packet, and renders
//! the canonical document. Responses are therefore byte-identical to a
//! single-process run at every shard count — the same contract
//! `--threads` honors, and the same goldens pin both.
//!
//! **Wire protocol.** Backends expose `POST /v1/shard/check`: the intent
//! text plus `#shard-base` / `#shard-apply` delta-script sections carrying
//! the exact before/after configurations (rendered against the resident
//! configuration both sides hold), and an `X-Jinjing-Shard: i/n` header
//! naming the slice. One kept-alive connection per backend carries every
//! fan-out ([`jinjing_serve::client::Conn`]).
//!
//! **Streaming.** A request carrying `X-Jinjing-Stream` is answered with
//! `Transfer-Encoding: chunked`: each completed backend emits a
//! newline-terminated progress document (`{"done":k,"shards":n}`), and
//! the final chunk is the complete canonical body — byte-identical to the
//! unstreamed response. Streamed responses are always HTTP 200 with no
//! `X-Jinjing-Exit` header; failures arrive as the canonical error
//! document in the final chunk.
//!
//! **No partial results.** A backend that is down, answers non-200, or
//! ships a malformed shard report fails the whole request with the
//! canonical error JSON (HTTP 502) — never a silently partial verdict.
//!
//! Std-only like every other crate: `TcpListener` + `jinjing-serve`'s
//! hand-rolled HTTP, no runtime, no TLS.

use std::collections::BTreeSet;
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use jinjing_acl::Acl;
use jinjing_core::check::CheckDelegate;
use jinjing_core::engine::EngineConfig;
use jinjing_core::query::{plan_query, run_query};
use jinjing_lint::LintReport;
use jinjing_net::{AclConfig, Network, Slot};
use jinjing_obs::json::{self, JsonWriter};
use jinjing_obs::{Collector, Level, Snapshot};
use jinjing_serve::client::Conn;
use jinjing_serve::http::{read_request, ChunkedWriter, HttpError, Request, Response};
use jinjing_serve::parse_plan_body;

/// How long a read on an accepted front-end connection may stall.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything that can go wrong standing the coordinator up.
#[derive(Debug)]
pub struct ShardError(pub String);

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> ShardError {
        ShardError(format!("io error: {e}"))
    }
}

/// Coordinator configuration: where to listen and which backends carry
/// the fan-out.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Listen address, e.g. `127.0.0.1:8090`; port `0` asks the OS for an
    /// ephemeral port (read it back via [`Coordinator::local_addr`] or
    /// `port_file`).
    pub addr: String,
    /// Backend `host:port` addresses, one per shard. Shard `i` of `n` is
    /// `backends[i]`; the fan-out width *is* the backend count.
    pub backends: Vec<String>,
    /// Engine worker threads for the coordinator's local work (candidate
    /// enumeration, witness re-solve). Responses are byte-identical for
    /// every value.
    pub threads: usize,
    /// Largest accepted request body in bytes; larger declares 413.
    pub max_body: usize,
    /// Per-backend call timeout in milliseconds.
    pub timeout_ms: u64,
    /// Write the bound address (`host:port`, one line) here once
    /// listening.
    pub port_file: Option<String>,
    /// Write the final merged observability snapshot here on shutdown.
    pub metrics_out: Option<String>,
    /// Stream observability events to stderr as they happen.
    pub trace: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            threads: 0,
            max_body: 1 << 20,
            timeout_ms: 30_000,
            port_file: None,
            metrics_out: None,
            trace: false,
        }
    }
}

/// What a finished coordinator reports back to its starter.
#[derive(Debug)]
pub struct CoordSummary {
    /// Requests parsed off the wire.
    pub requests: u64,
    /// The coordinator's own snapshot merged with every backend snapshot
    /// it accumulated — the same data `metrics_out` receives.
    pub snapshot: Snapshot,
}

/// One kept-alive connection per backend; a connection is locked for the
/// duration of one fan-out call, so concurrent requests to the *same*
/// backend serialize on its connection (requests to different backends
/// proceed in parallel).
struct BackendPool {
    conns: Vec<Mutex<Conn>>,
    addrs: Vec<String>,
}

impl BackendPool {
    fn len(&self) -> usize {
        self.conns.len()
    }
}

/// A progress sink for streamed responses: receives newline-terminated
/// JSON documents as backends complete.
pub type Progress = Arc<dyn Fn(String) + Send + Sync>;

/// Per-request fan-out totals, folded into the coordinator's metrics
/// after the request completes.
struct ShardAccum {
    snapshot: Snapshot,
    dirty_pairs: u64,
    queries: u64,
    fan_outs: u64,
}

impl ShardAccum {
    fn new() -> ShardAccum {
        ShardAccum {
            snapshot: Snapshot::empty(),
            dirty_pairs: 0,
            queries: 0,
            fan_outs: 0,
        }
    }
}

/// One backend's parsed `/v1/shard/check` reply.
struct WireReport {
    dirty_pairs: u64,
    queries: u64,
    pair: Option<(usize, usize)>,
    snapshot: Snapshot,
}

/// The [`CheckDelegate`] that ships each check fan-out to the backends:
/// renders the before/after configurations as delta scripts against the
/// resident configuration, posts one `/v1/shard/check` per backend
/// concurrently, and merges the shard-local minima into the global
/// minimum violating pair. Any backend failure fails the whole fan-out.
struct RemoteDelegate {
    net: Arc<Network>,
    resident: AclConfig,
    intent: String,
    pool: Arc<BackendPool>,
    accum: Arc<Mutex<ShardAccum>>,
    progress: Option<Progress>,
}

impl fmt::Debug for RemoteDelegate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteDelegate")
            .field("backends", &self.pool.addrs)
            .finish_non_exhaustive()
    }
}

/// Render an ACL as the one-line `set` payload of a delta script: rules
/// joined by `; `, with the display form's `(default …)` tail opened up
/// into the `default …` directive [`jinjing_acl::parse::parse_acl`]
/// reads back.
fn acl_one_line(acl: &Acl) -> String {
    acl.to_string()
        .lines()
        .map(|l| l.trim().trim_start_matches('(').trim_end_matches(')').to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Render the slot-wise difference `from → to` as a delta script
/// ([`jinjing_core::incr::parse_delta_script`] grammar): one `set` line
/// per slot whose ACL changed or appeared, one `clear` per slot that
/// vanished, in sorted slot order. Equal configurations render empty.
fn render_delta(net: &Network, from: &AclConfig, to: &AclConfig) -> String {
    let topo = net.topology();
    let mut slots: BTreeSet<Slot> = from.slots().into_iter().collect();
    slots.extend(to.slots());
    let mut out = String::new();
    for slot in slots {
        let name = || format!("{}-{}", topo.iface_name(slot.iface), slot.dir);
        match (from.get(slot), to.get(slot)) {
            (was, Some(acl)) if was != Some(acl) => {
                out.push_str(&format!("set {} {}\n", name(), acl_one_line(acl)));
            }
            (Some(_), None) => {
                out.push_str(&format!("clear {}\n", name()));
            }
            _ => {}
        }
    }
    out
}

impl RemoteDelegate {
    /// The `/v1/shard/check` body for one fan-out: the intent text plus
    /// both section markers (always present, possibly empty) so the
    /// backend checks exactly the configurations the coordinator holds.
    fn wire_body(&self, before: &AclConfig, after: &AclConfig) -> String {
        let mut body = self.intent.clone();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        body.push_str("#shard-base\n");
        body.push_str(&render_delta(&self.net, &self.resident, before));
        body.push_str("#shard-apply\n");
        body.push_str(&render_delta(&self.net, before, after));
        body
    }

    /// One backend call: post the shard body, parse the wire report.
    fn call_shard(&self, i: usize, n: usize, body: &str) -> Result<WireReport, String> {
        let addr = &self.pool.addrs[i];
        let mut conn = self.pool.conns[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let resp = conn
            .call(
                "POST",
                "/v1/shard/check",
                &[("X-Jinjing-Shard".to_string(), format!("{i}/{n}"))],
                body.as_bytes(),
            )
            .map_err(|e| format!("backend {addr}: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "backend {addr} answered {}: {}",
                resp.status,
                resp.body_text().trim()
            ));
        }
        let doc = json::parse(resp.body_text().trim())
            .map_err(|e| format!("backend {addr}: malformed shard report: {e}"))?;
        if doc.get("status").and_then(json::Json::as_str) != Some("ok") {
            return Err(format!("backend {addr}: shard report without status ok"));
        }
        let grab = |k: &str| {
            doc.get(k)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("backend {addr}: shard report missing {k}"))
        };
        let pair = doc.get("pair").and_then(|p| {
            Some((
                p.get("class")?.as_u64()? as usize,
                p.get("path")?.as_u64()? as usize,
            ))
        });
        let snapshot = match doc.get("obs") {
            Some(v) => Snapshot::from_json_value(v)
                .map_err(|e| format!("backend {addr}: malformed obs snapshot: {e}"))?,
            None => Snapshot::empty(),
        };
        Ok(WireReport {
            dirty_pairs: grab("dirty_pairs")?,
            queries: grab("queries")?,
            pair,
            snapshot,
        })
    }
}

impl CheckDelegate for RemoteDelegate {
    fn check(
        &self,
        before: &AclConfig,
        after: &AclConfig,
    ) -> Result<Option<(usize, usize)>, String> {
        let n = self.pool.len();
        let body = self.wire_body(before, after);
        let done = AtomicUsize::new(0);
        let results: Vec<Result<WireReport, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let body = body.as_str();
                    let done = &done;
                    s.spawn(move || {
                        let r = self.call_shard(i, n, body);
                        let k = done.fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(p) = &self.progress {
                            p(format!("{{\"done\":{k},\"shards\":{n}}}\n"));
                        }
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("shard worker panicked".to_string()))
                })
                .collect()
        });

        let mut min: Option<(usize, usize)> = None;
        let mut acc = self
            .accum
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        acc.fan_outs += 1;
        for (i, r) in results.into_iter().enumerate() {
            let rep = r.map_err(|e| format!("shard {i}/{n}: {e}"))?;
            acc.dirty_pairs += rep.dirty_pairs;
            acc.queries += rep.queries;
            acc.snapshot.merge(&rep.snapshot);
            if let Some(p) = rep.pair {
                if min.map_or(true, |m| p < m) {
                    min = Some(p);
                }
            }
        }
        Ok(min)
    }
}

/// Shared immutable context for the request handlers.
struct Cx<'a> {
    net: &'a Arc<Network>,
    config: &'a AclConfig,
    cfg: &'a ShardConfig,
    obs: &'a Collector,
    pool: &'a Arc<BackendPool>,
    shard_obs: &'a Mutex<Snapshot>,
}

impl<'a> Clone for Cx<'a> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a> Copy for Cx<'a> {}

impl<'a> Cx<'a> {
    /// An engine config whose check fan-out is delegated to the backends.
    fn delegated_config(
        &self,
        intent: &str,
        accum: &Arc<Mutex<ShardAccum>>,
        progress: Option<Progress>,
    ) -> EngineConfig {
        let delegate = RemoteDelegate {
            net: self.net.clone(),
            resident: self.config.clone(),
            intent: intent.to_string(),
            pool: self.pool.clone(),
            accum: accum.clone(),
            progress,
        };
        let mut ecfg = EngineConfig {
            threads: self.cfg.threads,
            ..EngineConfig::default()
        };
        ecfg.check.delegate = Some(Arc::new(delegate));
        ecfg
    }

    /// Fold one request's fan-out totals into the coordinator metrics.
    fn absorb(&self, accum: &Arc<Mutex<ShardAccum>>) {
        let acc = accum
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.obs.counter_add("shard.fan_outs", acc.fan_outs);
        self.obs.counter_add("shard.dirty_pairs", acc.dirty_pairs);
        self.obs.counter_add("shard.queries", acc.queries);
        self.shard_obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(&acc.snapshot);
    }

    /// The coordinator's own snapshot merged with everything the
    /// backends reported — [`Snapshot::merge`] in production.
    fn merged_snapshot(&self) -> Snapshot {
        let mut snap = self.obs.snapshot();
        snap.merge(
            &self
                .shard_obs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        snap
    }

    /// Send a response, counting the status class.
    fn respond(&self, stream: &mut TcpStream, resp: &Response) {
        self.obs
            .counter_add(&format!("shard.http_{}", resp.status), 1);
        if resp.write_to(stream).is_err() {
            self.obs.counter_add("shard.write_failures", 1);
        }
    }
}

/// Map an engine error message onto the right front-end status: a failed
/// backend fan-out is a gateway problem (502), anything else is the
/// caller's (400).
fn error_of(msg: &str) -> Response {
    if msg.contains("shard fan-out failed") {
        Response::error(502, msg)
    } else {
        Response::error(400, msg)
    }
}

/// `POST /v1/check`: run the intent locally with the solver fan-out
/// delegated to the backends. Byte-identical to the single-process
/// `jinjing run --format json` at any backend count.
fn check_endpoint(cx: Cx<'_>, text: &str, progress: Option<Progress>) -> Response {
    let accum = Arc::new(Mutex::new(ShardAccum::new()));
    let ecfg = cx.delegated_config(text, &accum, progress);
    let result = run_query(cx.net, cx.config, text, &ecfg);
    cx.absorb(&accum);
    match result {
        Err(e) => error_of(&e.to_string()),
        Ok(out) => {
            if out.plan.command != "check" {
                Response::error(
                    400,
                    &format!(
                        "intent command {:?} does not match endpoint /v1/check",
                        out.plan.command
                    ),
                )
            } else {
                let exit = if out.plan.verdict.starts_with("inconsistent") {
                    3
                } else {
                    0
                };
                Response::json(200, out.plan.to_canonical_json())
                    .with_header("X-Jinjing-Exit", &exit.to_string())
            }
        }
    }
}

/// `POST /v1/plan`: synthesize the rollout plan locally; every safety
/// probe's solver fan-out rides the same delegate. Byte-identical to
/// `jinjing plan --format json`.
fn plan_endpoint(cx: Cx<'_>, text: &str, progress: Option<Progress>) -> Response {
    let (intent, target, max_waves) = match parse_plan_body(text) {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &e),
    };
    let accum = Arc::new(Mutex::new(ShardAccum::new()));
    let mut ecfg = cx.delegated_config(&intent, &accum, progress);
    ecfg.plan.max_waves = max_waves;
    let result = plan_query(cx.net, cx.config, &intent, target.as_deref(), &ecfg);
    cx.absorb(&accum);
    match result {
        Err(e) => error_of(&e.to_string()),
        Ok(out) => {
            let exit = if out.feasible { 0 } else { 3 };
            Response::json(200, out.json).with_header("X-Jinjing-Exit", &exit.to_string())
        }
    }
}

/// `POST /v1/lint`: fan the lint body to every backend with its
/// `X-Jinjing-Shard` slice and merge the partitioned reports
/// ([`LintReport::merge`] + sort). Byte-identical to an unsharded
/// `jinjing lint --format json`.
fn lint_endpoint(cx: Cx<'_>, text: &str, progress: Option<Progress>) -> Response {
    let n = cx.pool.len();
    let done = AtomicUsize::new(0);
    let results: Vec<Result<LintReport, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let done = &done;
                let progress = &progress;
                s.spawn(move || {
                    let addr = &cx.pool.addrs[i];
                    let mut conn = cx.pool.conns[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let r = conn
                        .call(
                            "POST",
                            "/v1/lint",
                            &[("X-Jinjing-Shard".to_string(), format!("{i}/{n}"))],
                            text.as_bytes(),
                        )
                        .map_err(|e| format!("backend {addr}: {e}"))
                        .and_then(|resp| {
                            if resp.status != 200 {
                                return Err(format!(
                                    "backend {addr} answered {}: {}",
                                    resp.status,
                                    resp.body_text().trim()
                                ));
                            }
                            LintReport::from_json(&resp.body_text())
                                .map_err(|e| format!("backend {addr}: bad lint report: {e}"))
                        });
                    let k = done.fetch_add(1, Ordering::SeqCst) + 1;
                    if let Some(p) = progress {
                        p(format!("{{\"done\":{k},\"shards\":{n}}}\n"));
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("lint worker panicked".to_string()))
            })
            .collect()
    });
    let mut merged = LintReport::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(rep) => merged.merge(rep),
            Err(e) => return Response::error(502, &format!("shard {i}/{n}: {e}")),
        }
    }
    merged.sort();
    let exit = if merged.has_errors() { 4 } else { 0 };
    let mut body = merged.to_json();
    body.push('\n');
    Response::json(200, body).with_header("X-Jinjing-Exit", &exit.to_string())
}

/// Answer one engine request as a chunked stream: progress documents as
/// backends complete, then the complete canonical body as the final
/// chunk. The status line is always 200 (it is written before the work
/// runs); failures arrive as the canonical error document.
fn respond_streamed(
    cx: Cx<'_>,
    stream: &mut TcpStream,
    work: impl FnOnce(Option<Progress>) -> Response + Send,
) {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let tx = Mutex::new(tx);
    let progress: Progress = Arc::new(move |doc: String| {
        if let Ok(tx) = tx.lock() {
            let _ = tx.send(doc);
        }
    });
    let mut writer = match ChunkedWriter::begin(stream, 200, "application/json", &[]) {
        Ok(w) => w,
        Err(_) => {
            cx.obs.counter_add("shard.write_failures", 1);
            return;
        }
    };
    let resp = std::thread::scope(|s| {
        let handle = s.spawn(move || work(Some(progress)));
        // The progress Arc lives inside the delegate; when the work
        // closure returns (dropping its engine config), the channel
        // disconnects and this drain ends.
        for doc in rx {
            let _ = writer.chunk(doc.as_bytes());
        }
        handle
            .join()
            .unwrap_or_else(|_| Response::error(500, "request worker panicked"))
    });
    cx.obs
        .counter_add(&format!("shard.http_{}", resp.status), 1);
    let ok = writer.chunk(&resp.body).is_ok() && writer.finish().is_ok();
    if !ok {
        cx.obs.counter_add("shard.write_failures", 1);
    }
}

/// The coordinator: a resident network + configuration in front of a
/// backend pool. [`Coordinator::bind`] claims the port;
/// [`Coordinator::run`] serves until a `POST /v1/shutdown`.
pub struct Coordinator {
    net: Arc<Network>,
    config: AclConfig,
    cfg: ShardConfig,
    listener: TcpListener,
    obs: Collector,
    pool: Arc<BackendPool>,
}

impl Coordinator {
    /// Bind the listener and prepare one kept-alive connection per
    /// backend (dialing is lazy — a backend may come up later, as long
    /// as it is reachable by the first fan-out).
    pub fn bind(
        net: Network,
        config: AclConfig,
        cfg: ShardConfig,
    ) -> Result<Coordinator, ShardError> {
        if cfg.backends.is_empty() {
            return Err(ShardError("at least one backend is required".to_string()));
        }
        let timeout = Duration::from_millis(cfg.timeout_ms.max(1));
        let mut conns = Vec::with_capacity(cfg.backends.len());
        for addr in &cfg.backends {
            conns.push(Mutex::new(
                Conn::new(addr, timeout).map_err(ShardError)?,
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ShardError(format!("bind {}: {e}", cfg.addr)))?;
        let obs = Collector::with_trace(cfg.trace || jinjing_obs::trace_env_enabled());
        let pool = Arc::new(BackendPool {
            conns,
            addrs: cfg.backends.clone(),
        });
        Ok(Coordinator {
            net: Arc::new(net),
            config,
            cfg,
            listener,
            obs,
            pool,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, ShardError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serve until a `POST /v1/shutdown` arrives. Requests are handled
    /// inline on the accept thread — the concurrency that matters is the
    /// per-request backend fan-out, not front-end parallelism.
    pub fn run(self) -> Result<CoordSummary, ShardError> {
        let Coordinator {
            net,
            config,
            cfg,
            listener,
            obs,
            pool,
        } = self;
        let addr = listener.local_addr()?;
        if let Some(path) = &cfg.port_file {
            std::fs::write(path, format!("{addr}\n"))
                .map_err(|e| ShardError(format!("{path}: {e}")))?;
        }
        let shard_obs: Mutex<Snapshot> = Mutex::new(Snapshot::empty());
        let cx = Cx {
            net: &net,
            config: &config,
            cfg: &cfg,
            obs: &obs,
            pool: &pool,
            shard_obs: &shard_obs,
        };
        obs.event(
            Level::Info,
            "shard.start",
            &format!("coordinating {} backends on {addr}", pool.len()),
        );

        for stream in listener.incoming() {
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
            let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
            let req = match read_request(&mut stream, cfg.max_body) {
                Ok(r) => r,
                Err(HttpError::Malformed(m)) => {
                    obs.counter_add("shard.requests_total", 1);
                    cx.respond(&mut stream, &Response::error(400, &m));
                    continue;
                }
                Err(HttpError::TooLarge(m)) => {
                    obs.counter_add("shard.requests_total", 1);
                    cx.respond(&mut stream, &Response::error(413, &m));
                    continue;
                }
                Err(HttpError::Io(_)) => continue,
            };
            obs.counter_add("shard.requests_total", 1);
            if handle_request(cx, req, &mut stream) == Flow::Shutdown {
                break;
            }
        }

        obs.event(Level::Info, "shard.stop", "drained");
        let snapshot = cx.merged_snapshot();
        if let Some(path) = &cfg.metrics_out {
            std::fs::write(path, snapshot.to_json())
                .map_err(|e| ShardError(format!("{path}: {e}")))?;
        }
        Ok(CoordSummary {
            requests: snapshot.counter("shard.requests_total"),
            snapshot,
        })
    }
}

/// Whether the accept loop keeps serving after a request.
#[derive(PartialEq)]
enum Flow {
    Continue,
    Shutdown,
}

/// Dispatch one parsed front-end request.
fn handle_request(cx: Cx<'_>, req: Request, stream: &mut TcpStream) -> Flow {
    let streamed = req
        .header("x-jinjing-stream")
        .is_some_and(|v| !v.is_empty() && v != "0");
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("backends");
            w.u64(cx.pool.len() as u64);
            w.key("status");
            w.string("ok");
            w.end_object();
            let mut body = w.finish();
            body.push('\n');
            cx.respond(stream, &Response::json(200, body));
        }
        ("GET", "/metrics.json") => {
            let body = cx.merged_snapshot().to_json();
            cx.respond(stream, &Response::json(200, body));
        }
        ("POST", "/v1/shutdown") => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("status");
            w.string("draining");
            w.end_object();
            let mut body = w.finish();
            body.push('\n');
            cx.respond(
                stream,
                &Response::json(200, body).with_header("X-Jinjing-Exit", "0"),
            );
            return Flow::Shutdown;
        }
        ("POST", "/v1/check") | ("POST", "/v1/plan") | ("POST", "/v1/lint") => {
            let text = match req.body_text() {
                Ok(t) => t.to_string(),
                Err(_) => {
                    cx.respond(stream, &Response::error(400, "unreadable body"));
                    return Flow::Continue;
                }
            };
            let path = req.path.clone();
            let work = move |progress: Option<Progress>| match path.as_str() {
                "/v1/check" => check_endpoint(cx, &text, progress),
                "/v1/plan" => plan_endpoint(cx, &text, progress),
                _ => lint_endpoint(cx, &text, progress),
            };
            if streamed {
                respond_streamed(cx, stream, work);
            } else {
                let resp = work(None);
                cx.respond(stream, &resp);
            }
        }
        (method, path) => {
            cx.respond(
                stream,
                &Response::error(404, &format!("no route for {method} {path}")),
            );
        }
    }
    Flow::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_core::figure1::Figure1;
    use jinjing_serve::client;
    use jinjing_serve::{ServeConfig, Server};

    const CHECK_INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";

    /// Spawn a backend daemon, returning its address and join handle.
    fn backend() -> (String, std::thread::JoinHandle<()>) {
        let f = Figure1::new();
        let srv = Server::bind(f.net, f.config, ServeConfig::default()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            srv.run().unwrap();
        });
        (addr, handle)
    }

    /// Spawn a coordinator over the given backends.
    fn coordinator(backends: Vec<String>) -> (String, std::thread::JoinHandle<CoordSummary>) {
        let f = Figure1::new();
        let cfg = ShardConfig {
            backends,
            ..ShardConfig::default()
        };
        let coord = Coordinator::bind(f.net, f.config, cfg).unwrap();
        let addr = coord.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || coord.run().unwrap());
        (addr, handle)
    }

    fn call(addr: &str, method: &str, path: &str, body: &str) -> client::CallResponse {
        client::call(
            addr,
            method,
            path,
            &[],
            body.as_bytes(),
            Duration::from_secs(30),
        )
        .expect("call")
    }

    fn shutdown(addr: &str) {
        let r = call(addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
    }

    #[test]
    fn acl_renders_to_one_parseable_line() {
        let acl = jinjing_acl::AclBuilder::default_deny()
            .deny_dst("1.0.0.0/8")
            .permit_dst("2.0.0.0/8")
            .build();
        let line = acl_one_line(&acl);
        assert_eq!(
            line,
            "deny dst 1.0.0.0/8; permit dst 2.0.0.0/8; default deny"
        );
        let parsed = jinjing_acl::parse::parse_acl(&line.replace(';', "\n")).unwrap();
        assert_eq!(parsed, acl);
    }

    #[test]
    fn delta_rendering_round_trips_through_the_script_parser() {
        let f = Figure1::new();
        let mut to = f.config.clone();
        // One edit, one removal, everything else untouched.
        to.set(
            f.slot("A1"),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("9.0.0.0/8")
                .build(),
        );
        to.clear(f.slot("C1"));
        let script = render_delta(&f.net, &f.config, &to);
        assert!(script.contains("set A:1-in"), "{script}");
        assert!(script.contains("clear C:1-in"), "{script}");
        let deltas = jinjing_core::incr::parse_delta_script(&f.net, &script).unwrap();
        let mut rebuilt = f.config.clone();
        for (_, d) in &deltas {
            rebuilt = d.applied_to(&rebuilt);
        }
        assert_eq!(rebuilt, to, "script must rebuild the target exactly");
        // Equal configurations render the empty script.
        assert_eq!(render_delta(&f.net, &f.config, &f.config), "");
    }

    #[test]
    fn coordinator_is_byte_identical_to_single_process_at_every_width() {
        // Single-process canonical bytes for check, lint, and plan.
        let f = Figure1::new();
        let ecfg = EngineConfig::default();
        let direct_check = run_query(&f.net, &f.config, CHECK_INTENT, &ecfg)
            .unwrap()
            .plan
            .to_canonical_json();
        let direct_plan = plan_query(&f.net, &f.config, CHECK_INTENT, None, &ecfg)
            .unwrap()
            .json;
        let lint_out = jinjing_core::engine::lint(
            &f.net,
            &f.config,
            None,
            &jinjing_lint::LintConfig::default(),
        );
        let jinjing_core::engine::ReportKind::Lint(lint_report) = lint_out.kind else {
            panic!("lint returned a non-lint report");
        };
        let mut direct_lint = lint_report.to_json();
        direct_lint.push('\n');

        for width in [1usize, 2] {
            let mut backends = Vec::new();
            let mut handles = Vec::new();
            for _ in 0..width {
                let (addr, handle) = backend();
                backends.push(addr);
                handles.push(handle);
            }
            let (coord_addr, coord_handle) = coordinator(backends.clone());

            let r = call(&coord_addr, "POST", "/v1/check", CHECK_INTENT);
            assert_eq!(r.status, 200, "{}", r.body_text());
            assert_eq!(r.exit_code(), 3);
            assert_eq!(
                r.body_text(),
                direct_check,
                "{width}-shard check must render identical bytes"
            );

            let r = call(&coord_addr, "POST", "/v1/lint", "");
            assert_eq!(r.status, 200, "{}", r.body_text());
            assert_eq!(
                r.body_text(),
                direct_lint,
                "{width}-shard lint must render identical bytes"
            );

            let r = call(&coord_addr, "POST", "/v1/plan", CHECK_INTENT);
            assert_eq!(r.status, 200, "{}", r.body_text());
            assert_eq!(
                r.body_text(),
                direct_plan,
                "{width}-shard plan must render identical bytes"
            );

            // The coordinator accumulated backend snapshots: solver work
            // happened remotely and is visible in the merged metrics.
            let r = call(&coord_addr, "GET", "/metrics.json", "");
            assert_eq!(r.status, 200);
            let merged = Snapshot::from_json(&r.body_text()).unwrap();
            assert!(merged.counter("solver.queries") > 0, "backend solver work");
            assert!(merged.counter("shard.fan_outs") > 0);

            shutdown(&coord_addr);
            let summary = coord_handle.join().unwrap();
            assert!(summary.requests >= 4);
            for addr in &backends {
                shutdown(addr);
            }
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn a_down_backend_fails_the_request_with_canonical_json() {
        let (live, live_handle) = backend();
        // A dead address: bind an ephemeral port, then drop the listener.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (coord_addr, coord_handle) = coordinator(vec![live.clone(), dead]);

        let r = call(&coord_addr, "POST", "/v1/check", CHECK_INTENT);
        assert_eq!(r.status, 502, "{}", r.body_text());
        assert_eq!(r.exit_code(), 1);
        let doc = json::parse(r.body_text().trim()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_u64(), Some(502));
        assert!(
            doc.get("error").unwrap().as_str().unwrap().contains("shard 1/2"),
            "{}",
            r.body_text()
        );

        let r = call(&coord_addr, "POST", "/v1/lint", "");
        assert_eq!(r.status, 502, "lint fan-out must fail too");

        shutdown(&coord_addr);
        coord_handle.join().unwrap();
        shutdown(&live);
        live_handle.join().unwrap();
    }

    #[test]
    fn streamed_responses_emit_progress_then_identical_bytes() {
        let (b1, h1) = backend();
        let (b2, h2) = backend();
        let (coord_addr, coord_handle) = coordinator(vec![b1.clone(), b2.clone()]);

        let plain = call(&coord_addr, "POST", "/v1/check", CHECK_INTENT);
        assert_eq!(plain.status, 200);

        let mut chunks: Vec<String> = Vec::new();
        let streamed = client::call_stream(
            &coord_addr,
            "POST",
            "/v1/check",
            &[("X-Jinjing-Stream".to_string(), "1".to_string())],
            CHECK_INTENT.as_bytes(),
            Duration::from_secs(30),
            &mut |chunk| chunks.push(String::from_utf8_lossy(chunk).to_string()),
        )
        .expect("streamed call");
        assert_eq!(streamed.status, 200);
        assert!(
            streamed.header("x-jinjing-exit").is_none(),
            "streamed responses carry no exit header"
        );
        assert_eq!(
            streamed.body_text(),
            plain.body_text(),
            "final chunk must be byte-identical to the unstreamed body"
        );
        assert!(
            chunks.len() >= 3,
            "two progress documents + the final body, got {chunks:?}"
        );
        let progress = json::parse(chunks[0].trim()).unwrap();
        assert_eq!(progress.get("shards").unwrap().as_u64(), Some(2));
        assert!(progress.get("done").unwrap().as_u64().unwrap() >= 1);

        shutdown(&coord_addr);
        coord_handle.join().unwrap();
        for (addr, h) in [(b1, h1), (b2, h2)] {
            shutdown(&addr);
            h.join().unwrap();
        }
    }

    #[test]
    fn coordinator_introspection_and_rejects() {
        let (b, bh) = backend();
        let (coord_addr, coord_handle) = coordinator(vec![b.clone()]);

        let r = call(&coord_addr, "GET", "/healthz", "");
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains("\"backends\":1"), "{}", r.body_text());

        let r = call(&coord_addr, "GET", "/nope", "");
        assert_eq!(r.status, 404);

        let r = call(&coord_addr, "POST", "/v1/check", "scope Z:*\ncheck\n");
        assert_eq!(r.status, 400);

        shutdown(&coord_addr);
        coord_handle.join().unwrap();
        shutdown(&b);
        bh.join().unwrap();
    }

    #[test]
    fn bind_rejects_an_empty_backend_list() {
        let f = Figure1::new();
        let Err(err) = Coordinator::bind(f.net, f.config, ShardConfig::default()) else {
            panic!("bind accepted an empty backend list");
        };
        assert!(err.to_string().contains("at least one backend"));
    }
}
