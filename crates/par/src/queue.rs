//! A bounded MPMC work queue with backpressure and depth introspection.
//!
//! [`Pool`](crate::Pool) fans a *known* batch of items over scoped
//! workers; a long-running service has the opposite shape — an unbounded
//! *stream* of jobs arriving from the network that must be admitted,
//! queued, or refused. [`Bounded`] is the admission-control piece:
//!
//! * **Bounded**: [`Bounded::try_push`] never blocks; when the queue is
//!   at capacity it hands the job back ([`PushError::Full`]) so the
//!   caller can shed load (the daemon's HTTP 429).
//! * **Blocking pop**: consumers park on a condvar; [`Bounded::pop`]
//!   returns `None` only after [`Bounded::close`] *and* the queue is
//!   empty, which is exactly the graceful-drain contract — every job
//!   admitted before the close is still handed to a worker.
//! * **Introspection**: [`Bounded::depth`] / [`Bounded::capacity`] are
//!   cheap and callable from any thread, so a metrics endpoint can gauge
//!   queue pressure while workers run.
//!
//! Std-only like the rest of the crate: one mutex + one condvar, no
//! spinning.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`Bounded::try_push`] was refused; the job rides back to the
/// caller in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load or retry later.
    Full(T),
    /// The queue has been closed — no new work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The refused job.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Closed(t) => t,
        }
    }

    /// `true` for the at-capacity refusal.
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO queue. See the module
/// docs for the admission/drain contract.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A fresh open queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Queue state is plain data; recover it from a poisoned lock
        // rather than cascading a worker panic into the whole service.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admit a job without blocking. Returns the depth *after* the push
    /// on success; hands the job back when full or closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Take the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .ready
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stop admitting new jobs and wake every parked consumer. Jobs
    /// already queued are still handed out; idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Has [`Bounded::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Jobs currently waiting (admitted, not yet popped).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The admission bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_fifo_and_depth() {
        let q: Bounded<u32> = Bounded::new(3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_sheds_load_with_the_job_attached() {
        let q: Bounded<&str> = Bounded::new(1);
        q.try_push("a").unwrap();
        let err = q.try_push("b").unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), "b");
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q: Bounded<u32> = Bounded::new(4);
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        assert!(q.is_closed());
        let err = q.try_push(9).unwrap_err();
        assert!(!err.is_full());
        assert_eq!(err.into_inner(), 9);
        // Admitted-before-close jobs still drain, in order.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(8));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays None");
    }

    #[test]
    fn blocking_consumers_wake_on_push_and_close() {
        let q: Bounded<usize> = Bounded::new(8);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        seen.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=10 {
                // Producers retry on Full — capacity 8 with 3 consumers.
                let mut item = v;
                loop {
                    match q.try_push(item) {
                        Ok(_) => break,
                        Err(PushError::Full(t)) => {
                            item = t;
                            std::thread::yield_now();
                        }
                        Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                    }
                }
            }
            q.close();
        });
        assert_eq!(seen.load(Ordering::Relaxed), (1..=10).sum::<usize>());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q: Bounded<u8> = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }
}
