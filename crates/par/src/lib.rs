//! jinjing-par: a zero-dependency, work-stealing, scoped thread pool.
//!
//! The crate exists for one reason: the verifier's hot loops (per-`(class,
//! path)` solver queries in `check`, per-neighborhood placement in `fix`,
//! per-AEC synthesis in `generate`) are embarrassingly parallel — every
//! Eq. 3 query is an independent SAT instance. We want to fan those out
//! without pulling `rayon` (the workspace is std-only by policy) and
//! without giving up determinism: reports must be byte-identical no matter
//! how many worker threads ran.
//!
//! Design:
//!
//! * [`Pool`] is a *value*, not a set of live threads. Threads are spawned
//!   per [`Pool::par_map`] call inside [`std::thread::scope`], so borrowed
//!   data (networks, tasks, solvers' inputs) flows into workers without
//!   `'static` bounds and without any unsafe code.
//! * Work distribution is chunked work-stealing: the index range is split
//!   into contiguous chunks, one deque per worker. Workers pop from the
//!   *front* of their own deque (preserving locality and approximate index
//!   order) and steal from the *back* of a victim's deque when empty.
//! * Determinism: every worker tags results with the item index; the
//!   driver reassembles them in index order. `threads <= 1` (or a single
//!   item) short-circuits to the exact serial `for` loop — no threads, no
//!   locks — so the default configuration behaves precisely like the
//!   pre-parallel code.
//! * Early exit is expressed through [`Cancel`], a monotonically
//!   decreasing index threshold. Calling [`Cancel::cut`]`(i)` after
//!   finding a "violation" at index `i` lets workers skip indices strictly
//!   greater than the smallest cut index. The minimal violating index is
//!   never skipped (only indices *beyond* a cut are), so a driver that
//!   folds results in index order and stops at the first violation sees
//!   the same outcome regardless of thread count or scheduling.
//! * Streamed (rather than batched) workloads — the `jinjing serve`
//!   daemon's request dispatch — use [`queue::Bounded`], a bounded MPMC
//!   queue with non-blocking admission (backpressure), a graceful-drain
//!   close, and depth introspection for live metrics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod queue;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable consulted when a thread count of `0` ("auto") is
/// requested. Invalid or missing values resolve to `1` (serial).
pub const THREADS_ENV: &str = "JINJING_THREADS";

thread_local! {
    /// Worker slot of the calling thread when it was spawned by a
    /// [`Pool`] fan-out; `None` on the driver and on foreign threads.
    static CURRENT_WORKER: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The pool-worker slot index (`0..workers`) of the calling thread, or
/// `None` outside a [`Pool`] fan-out (including the serial `threads <= 1`
/// path, which runs on the caller's thread).
///
/// This is observability plumbing, not scheduling state: per-request
/// flight recorders use it to tag trace events with the worker track
/// that produced them. Pool threads live only for the duration of one
/// `par_map` call, so the tag never leaks across fan-outs.
#[must_use]
pub fn current_worker() -> Option<usize> {
    CURRENT_WORKER.with(std::cell::Cell::get)
}

/// Upper bound on worker threads; guards against absurd env values.
const MAX_THREADS: usize = 256;

/// Resolve a requested thread count to an effective one.
///
/// * `0` means "auto": consult [`THREADS_ENV`], defaulting to `1`
///   (serial) when unset or unparsable. Serial-by-default keeps the
///   out-of-the-box behavior identical to the historical implementation.
/// * Any other value is used as-is, clamped to [`MAX_THREADS`].
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    let n = if requested == 0 {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, MAX_THREADS)
}

/// A cooperative early-exit threshold shared between workers.
///
/// Semantics: after `cut(i)`, indices strictly greater than the smallest
/// cut index may be skipped. Indices `<=` the smallest cut index are
/// always processed, which is what makes "first violation in index order"
/// deterministic under any schedule.
#[derive(Debug)]
pub struct Cancel {
    threshold: AtomicUsize,
}

impl Default for Cancel {
    fn default() -> Self {
        Self::new()
    }
}

impl Cancel {
    /// A fresh threshold; nothing is cancelled.
    #[must_use]
    pub fn new() -> Self {
        Cancel {
            threshold: AtomicUsize::new(usize::MAX),
        }
    }

    /// Record a "violation" at `index`: indices beyond the minimum cut
    /// index become skippable. Monotone (uses `fetch_min`), so concurrent
    /// cuts converge on the smallest index.
    pub fn cut(&self, index: usize) {
        self.threshold.fetch_min(index, Ordering::SeqCst);
    }

    /// Should work at `index` be skipped? True iff some strictly smaller
    /// index has been cut.
    #[must_use]
    pub fn is_beyond(&self, index: usize) -> bool {
        index > self.threshold.load(Ordering::SeqCst)
    }

    /// Has any index been cut?
    #[must_use]
    pub fn is_cut(&self) -> bool {
        self.threshold.load(Ordering::SeqCst) != usize::MAX
    }

    /// The smallest cut index, if any.
    #[must_use]
    pub fn threshold(&self) -> Option<usize> {
        match self.threshold.load(Ordering::SeqCst) {
            usize::MAX => None,
            t => Some(t),
        }
    }
}

/// A scoped work-stealing thread pool with a fixed worker count.
///
/// `Pool` is cheap to construct (it holds only the thread count); workers
/// are spawned per call inside [`std::thread::scope`].
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(0)
    }
}

impl Pool {
    /// Create a pool. `threads == 0` means "auto" (see
    /// [`resolve_threads`]); the result is always `>= 1`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: resolve_threads(threads),
        }
    }

    /// Create a pool from [`THREADS_ENV`] alone.
    #[must_use]
    pub fn from_env() -> Self {
        Pool::new(0)
    }

    /// Effective worker count (always `>= 1`).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Is this pool going to run everything on the caller's thread?
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Run `f` with a [`std::thread::Scope`] so callers can spawn custom
    /// borrowed workers. Provided for irregular parallel sections that
    /// don't fit the `par_map` shape.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope thread::Scope<'scope, 'env>) -> R,
    {
        thread::scope(f)
    }

    /// Map `f` over `items` in parallel, returning results in item order.
    ///
    /// `f` receives `(index, &item)`. With one worker (or fewer than two
    /// items) this is exactly the serial loop — no threads are spawned.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let cancel = Cancel::new();
        let opts = self.run(items, &cancel, &f);
        // No cancellation: every slot is filled.
        opts.into_iter()
            .map(|o| o.expect("par_map: un-cancelled index missing"))
            .collect()
    }

    /// Like [`Pool::par_map`], but workers may skip indices beyond the
    /// smallest index `cut` on `cancel` (typically by `f` itself, after
    /// detecting a violation). Skipped slots are `None`.
    ///
    /// Guarantee: for every index `i` less than or equal to the smallest
    /// cut index, the result slot `i` is `Some`. A driver folding results
    /// in index order and stopping at the first "violating" `Some`
    /// therefore observes a schedule-independent outcome.
    pub fn par_map_cancel<T, R, F>(&self, items: &[T], cancel: &Cancel, f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items, cancel, &f)
    }

    fn run<T, R, F>(&self, items: &[T], cancel: &Cancel, f: &F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n).max(1);
        if workers <= 1 {
            // Exact serial path: index order, caller's thread, no locks.
            let mut out: Vec<Option<R>> = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                if cancel.is_beyond(i) {
                    out.push(None);
                } else {
                    out.push(Some(f(i, item)));
                }
            }
            return out;
        }

        // One deque per worker, seeded with a contiguous chunk of the
        // index range so initial execution is cache-friendly and roughly
        // index-ordered.
        let deques: Vec<Mutex<VecDeque<usize>>> = split_chunks(n, workers)
            .into_iter()
            .map(|range| Mutex::new(range.collect()))
            .collect();
        let buckets: Vec<Mutex<Vec<(usize, R)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();

        thread::scope(|s| {
            let deques = &deques;
            let buckets = &buckets;
            for w in 0..workers {
                s.spawn(move || {
                    CURRENT_WORKER.with(|c| c.set(Some(w)));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some(i) = next_index(deques, w) {
                        if !cancel.is_beyond(i) {
                            local.push((i, f(i, &items[i])));
                        }
                    }
                    *buckets[w].lock().expect("par: result bucket poisoned") = local;
                });
            }
        });

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for bucket in buckets {
            for (i, r) in bucket.into_inner().expect("par: result bucket poisoned") {
                out[i] = Some(r);
            }
        }
        out
    }
}

/// Split `0..n` into `workers` contiguous ranges whose lengths differ by
/// at most one.
fn split_chunks(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Pop the next index for worker `w`: front of its own deque, else steal
/// from the *back* of the first non-empty victim (round-robin scan). A
/// full empty scan means all work has been claimed — no task ever spawns
/// new work, so it is safe to exit.
fn next_index(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = deques[w].lock().expect("par: deque poisoned").pop_front() {
        return Some(i);
    }
    let k = deques.len();
    for off in 1..k {
        let victim = (w + off) % k;
        if let Some(i) = deques[victim]
            .lock()
            .expect("par: deque poisoned")
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn current_worker_is_tagged_in_parallel_and_absent_serially() {
        assert_eq!(current_worker(), None, "driver thread has no slot");
        let items: Vec<usize> = (0..64).collect();
        // Serial path: runs on the caller's thread, no slot.
        let serial = Pool::new(1).par_map(&items, |_, _| current_worker());
        assert!(serial.iter().all(Option::is_none));
        // Parallel path: every item sees some worker slot within range.
        let workers = 4;
        let par = Pool::new(workers).par_map(&items, |_, _| current_worker());
        assert!(par
            .iter()
            .all(|w| w.is_some_and(|w| w < workers)));
    }

    #[test]
    fn chunks_cover_range_exactly() {
        for n in [0usize, 1, 2, 5, 7, 16, 97] {
            for workers in 1..=8 {
                let chunks = split_chunks(n, workers);
                assert_eq!(chunks.len(), workers);
                let mut covered = Vec::new();
                for c in &chunks {
                    covered.extend(c.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>());
                let lens: Vec<usize> = chunks.iter().map(ExactSizeIterator::len).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1, "unbalanced chunks: {lens:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_serial_for_all_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.par_map(&items, |i, x| x * 3 + i as u64);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, x| *x).is_empty());
        assert_eq!(pool.par_map(&[42u32], |i, x| x + i as u32), vec![42]);
    }

    #[test]
    fn work_stealing_balances_skewed_load() {
        // Front-loaded work: without stealing, worker 0 would do almost
        // everything while the rest idle. We can't observe idleness
        // directly, but we can check correctness under heavy skew.
        let items: Vec<u64> = (0..64).collect();
        let pool = Pool::new(4);
        let touched = AtomicU64::new(0);
        let got = pool.par_map(&items, |i, x| {
            if i < 8 {
                // Busy work proportional to nothing useful; keeps early
                // chunks occupied so later chunks get stolen.
                let mut acc = *x;
                for _ in 0..20_000 {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                }
                touched.fetch_add(acc & 1, Ordering::Relaxed);
            }
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn cancel_skips_only_beyond_threshold() {
        let c = Cancel::new();
        assert!(!c.is_cut());
        assert!(!c.is_beyond(0));
        assert!(!c.is_beyond(usize::MAX - 1));
        c.cut(10);
        assert!(c.is_cut());
        assert_eq!(c.threshold(), Some(10));
        assert!(!c.is_beyond(10));
        assert!(!c.is_beyond(3));
        assert!(c.is_beyond(11));
        c.cut(25); // larger cut never raises the threshold
        assert_eq!(c.threshold(), Some(10));
        c.cut(4);
        assert_eq!(c.threshold(), Some(4));
        assert!(c.is_beyond(5));
        assert!(!c.is_beyond(4));
    }

    #[test]
    fn minimal_violation_survives_any_schedule() {
        // Items 13, 29, 57 are "violations". Whatever the schedule, every
        // index <= 13 must be present and the fold-in-order outcome must
        // be 13.
        let items: Vec<usize> = (0..64).collect();
        let violating = [13usize, 29, 57];
        for threads in [1usize, 2, 4, 8] {
            for _round in 0..8 {
                let pool = Pool::new(threads);
                let cancel = Cancel::new();
                let out = pool.par_map_cancel(&items, &cancel, |i, _x| {
                    let bad = violating.contains(&i);
                    if bad {
                        cancel.cut(i);
                    }
                    bad
                });
                for (i, slot) in out.iter().enumerate().take(14) {
                    assert!(slot.is_some(), "index {i} skipped (threads={threads})");
                }
                let first = out.iter().enumerate().find_map(|(i, s)| match s {
                    Some(true) => Some(i),
                    _ => None,
                });
                assert_eq!(first, Some(13), "threads={threads}");
            }
        }
    }

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert_eq!(resolve_threads(100_000), MAX_THREADS);
        // requested == 0 consults the env; with the variable unset it is
        // serial. (Set/remove in one test to avoid races between tests.)
        std::env::remove_var(THREADS_ENV);
        assert_eq!(resolve_threads(0), 1);
        std::env::set_var(THREADS_ENV, "4");
        assert_eq!(resolve_threads(0), 4);
        assert_eq!(Pool::from_env().threads(), 4);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(resolve_threads(0), 1);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(resolve_threads(0), 1);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn pool_scope_spawns_borrowed_workers() {
        let data = vec![1u32, 2, 3, 4];
        let total = AtomicU64::new(0);
        let pool = Pool::new(2);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    let sum: u32 = chunk.iter().sum();
                    total.fetch_add(u64::from(sum), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }
}
