//! ACL configuration state: the mapping from interface slots to ACLs.
//!
//! An [`AclConfig`] is the `L_Ω` of the paper (restricted to whatever slots
//! actually carry ACLs — every other slot behaves as `permit all`). It
//! evaluates path decision models both concretely (`c_p(h)`, Eq. 1) and in
//! exact set form (the set of packets a path permits), and produces the
//! before/after pairs that check/fix/generate consume.

use crate::ids::Slot;
use crate::network::Path;
use jinjing_acl::{Acl, Packet, PacketSet};
use std::collections::HashMap;

/// Assignment of ACLs to slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AclConfig {
    acls: HashMap<Slot, Acl>,
}

impl AclConfig {
    /// Empty configuration: everything permits.
    pub fn new() -> AclConfig {
        AclConfig::default()
    }

    /// Attach an ACL to a slot, replacing any previous one.
    pub fn set(&mut self, slot: Slot, acl: Acl) {
        self.acls.insert(slot, acl);
    }

    /// Remove the ACL from a slot (reverting it to `permit all`).
    pub fn clear(&mut self, slot: Slot) -> Option<Acl> {
        self.acls.remove(&slot)
    }

    /// The ACL at a slot, if one is configured.
    pub fn get(&self, slot: Slot) -> Option<&Acl> {
        self.acls.get(&slot)
    }

    /// All configured slots (sorted, for determinism).
    pub fn slots(&self) -> Vec<Slot> {
        let mut v: Vec<Slot> = self.acls.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of configured slots.
    pub fn len(&self) -> usize {
        self.acls.len()
    }

    /// `true` when no slot carries an ACL.
    pub fn is_empty(&self) -> bool {
        self.acls.is_empty()
    }

    /// The decision of a slot on a packet: `f_ξ(h)`. Slots without ACLs
    /// permit everything.
    pub fn slot_permits(&self, slot: Slot, p: &Packet) -> bool {
        self.acls.get(&slot).map_or(true, |a| a.permits(p))
    }

    /// The permit-set of a slot (full header space when unconfigured).
    pub fn slot_permit_set(&self, slot: Slot) -> PacketSet {
        self.acls
            .get(&slot)
            .map_or_else(PacketSet::full, Acl::permit_set)
    }

    /// Concrete path decision model `c_p(h)` (Eq. 1): conjunction of every
    /// slot decision along the path.
    pub fn path_permits(&self, path: &Path, p: &Packet) -> bool {
        path.slots.iter().all(|&s| self.slot_permits(s, p))
    }

    /// Exact path permit-set: the packets the whole path lets through.
    pub fn path_permit_set(&self, path: &Path) -> PacketSet {
        let mut set = PacketSet::full();
        for &s in &path.slots {
            if let Some(a) = self.acls.get(&s) {
                set = set.intersect(&a.permit_set());
                if set.is_empty() {
                    break;
                }
            }
        }
        set
    }

    /// The slots along a path that actually carry ACLs.
    pub fn configured_slots_on(&self, path: &Path) -> Vec<Slot> {
        path.slots
            .iter()
            .copied()
            .filter(|s| self.acls.contains_key(s))
            .collect()
    }

    /// Total rule count across all slots (a size metric for reports).
    pub fn total_rules(&self) -> usize {
        self.acls.values().map(Acl::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Dir, IfaceId};
    use jinjing_acl::AclBuilder;

    fn slot(i: u32) -> Slot {
        Slot {
            iface: IfaceId(i),
            dir: Dir::In,
        }
    }

    fn path(slots: &[Slot]) -> Path {
        Path {
            slots: slots.to_vec(),
            carried: PacketSet::full(),
        }
    }

    #[test]
    fn unconfigured_slots_permit() {
        let cfg = AclConfig::new();
        let p = Packet::to_dst(1);
        assert!(cfg.slot_permits(slot(0), &p));
        assert!(cfg.slot_permit_set(slot(0)).same_set(&PacketSet::full()));
    }

    #[test]
    fn path_conjunction_semantics() {
        let mut cfg = AclConfig::new();
        cfg.set(
            slot(0),
            AclBuilder::default_permit().deny_dst("6.0.0.0/8").build(),
        );
        cfg.set(
            slot(1),
            AclBuilder::default_permit().deny_dst("7.0.0.0/8").build(),
        );
        let pa = path(&[slot(0), slot(1), slot(2)]);
        assert!(!cfg.path_permits(&pa, &Packet::to_dst(0x0600_0001)));
        assert!(!cfg.path_permits(&pa, &Packet::to_dst(0x0700_0001)));
        assert!(cfg.path_permits(&pa, &Packet::to_dst(0x0800_0001)));
        let set = cfg.path_permit_set(&pa);
        assert!(!set.contains(&Packet::to_dst(0x0600_0001)));
        assert!(!set.contains(&Packet::to_dst(0x0700_0001)));
        assert!(set.contains(&Packet::to_dst(0x0800_0001)));
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut cfg = AclConfig::new();
        let acl = AclBuilder::default_permit().deny_dst("1.0.0.0/8").build();
        cfg.set(slot(3), acl.clone());
        assert_eq!(cfg.get(slot(3)), Some(&acl));
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.total_rules(), 1);
        let removed = cfg.clear(slot(3));
        assert_eq!(removed, Some(acl));
        assert!(cfg.is_empty());
    }

    #[test]
    fn configured_slots_on_path_filters() {
        let mut cfg = AclConfig::new();
        cfg.set(slot(1), Acl::deny_all());
        let pa = path(&[slot(0), slot(1), slot(2)]);
        assert_eq!(cfg.configured_slots_on(&pa), vec![slot(1)]);
    }

    #[test]
    fn slots_listing_is_sorted() {
        let mut cfg = AclConfig::new();
        cfg.set(slot(5), Acl::permit_all());
        cfg.set(slot(1), Acl::permit_all());
        cfg.set(Slot::egress(IfaceId(1)), Acl::permit_all());
        let slots = cfg.slots();
        assert_eq!(slots.len(), 3);
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
    }
}
