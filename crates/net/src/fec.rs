//! Forwarding equivalence classes (§4.1, Eq. 2).
//!
//! Two packets belong to the same FEC when every forwarding predicate
//! `g ∈ G_Ω` agrees on them. We compute the FEC partition of the traffic
//! entering a scope by predicate refinement over the scope's forwarding
//! family — the exact-set analogue of the paper's symbolic definition.

use crate::network::{Network, Scope};
use jinjing_acl::atoms::{refine, ClassExplosion, RefineLimits};
use jinjing_acl::PacketSet;

/// One forwarding equivalence class `[h]_FEC`.
#[derive(Debug, Clone)]
pub struct Fec {
    /// The packets of the class.
    pub set: PacketSet,
}

/// Derive the FECs of `traffic` within `scope`.
///
/// Guarantees (inherited from [`refine`]): classes are non-empty, pairwise
/// disjoint, cover `traffic`, and every forwarding predicate in the scope is
/// constant on each class.
pub fn derive_fecs(
    net: &Network,
    scope: &Scope,
    traffic: &PacketSet,
    limits: RefineLimits,
) -> Result<Vec<Fec>, ClassExplosion> {
    let preds: Vec<PacketSet> = net
        .scope_predicates(scope)
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    let preds = jinjing_acl::atoms::dedupe_predicates(preds);
    let classes = refine(traffic, &preds, limits)?;
    Ok(classes.into_iter().map(|c| Fec { set: c.set }).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::{pfx, prefix_set};
    use crate::topology::TopologyBuilder;
    use jinjing_acl::Packet;

    /// One router fanning three prefixes out of two interfaces.
    fn fan() -> (Network, Scope) {
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let _in = tb.iface(a, "in");
        let left = tb.iface(a, "left");
        let right = tb.iface(a, "right");
        let mut net = Network::new(tb.build());
        net.announce(pfx("1.0.0.0/8"), left);
        net.announce(pfx("2.0.0.0/8"), right);
        net.announce(pfx("3.0.0.0/8"), right);
        net.compute_routes();
        let scope = Scope::whole(net.topology());
        (net, scope)
    }

    #[test]
    fn fecs_group_same_forwarding() {
        let (net, scope) = fan();
        let traffic = prefix_set(&pfx("1.0.0.0/8"))
            .union(&prefix_set(&pfx("2.0.0.0/8")))
            .union(&prefix_set(&pfx("3.0.0.0/8")));
        let fecs = derive_fecs(&net, &scope, &traffic, RefineLimits::default()).unwrap();
        // 1/8 goes left; 2/8 and 3/8 both go right → exactly 2 FECs.
        assert_eq!(fecs.len(), 2);
        let two = Packet::to_dst(0x0200_0001);
        let three = Packet::to_dst(0x0300_0001);
        let one = Packet::to_dst(0x0100_0001);
        let class_of = |p: &Packet| fecs.iter().position(|f| f.set.contains(p)).unwrap();
        assert_eq!(class_of(&two), class_of(&three));
        assert_ne!(class_of(&one), class_of(&two));
    }

    #[test]
    fn fec_partition_covers_traffic() {
        let (net, scope) = fan();
        let traffic = prefix_set(&pfx("1.0.0.0/8")).union(&prefix_set(&pfx("2.0.0.0/8")));
        let fecs = derive_fecs(&net, &scope, &traffic, RefineLimits::default()).unwrap();
        let mut cover = PacketSet::empty();
        for (i, f) in fecs.iter().enumerate() {
            assert!(!f.set.is_empty());
            for g in &fecs[i + 1..] {
                assert!(!f.set.intersects(&g.set));
            }
            cover = cover.union(&f.set);
        }
        assert!(cover.same_set(&traffic));
    }

    #[test]
    fn empty_traffic_no_fecs() {
        let (net, scope) = fan();
        let fecs = derive_fecs(&net, &scope, &PacketSet::empty(), RefineLimits::default()).unwrap();
        assert!(fecs.is_empty());
    }
}
