//! Devices, interfaces and links.
//!
//! A topology is a set of named devices, each with named interfaces, plus
//! bidirectional links pairing interfaces of different devices. Interfaces
//! without a link peer face the *external* world (the backbone outside the
//! managed WAN); inside a scope they are border interfaces by construction.

use crate::ids::{DeviceId, IfaceId};
use std::collections::HashMap;
use std::fmt;

/// A device record.
#[derive(Debug, Clone)]
pub struct Device {
    /// Human-readable name ("A", "core-3", …).
    pub name: String,
    /// The device's interfaces (global IDs).
    pub ifaces: Vec<IfaceId>,
}

/// An interface record.
#[derive(Debug, Clone)]
pub struct Iface {
    /// Name local to the device ("1", "eth0", …).
    pub name: String,
    /// Owning device.
    pub device: DeviceId,
    /// The interface at the other end of the link, if any. `None` means the
    /// interface faces outside the modeled network.
    pub peer: Option<IfaceId>,
}

/// An immutable topology. Build with [`TopologyBuilder`].
#[derive(Debug, Clone, Default)]
pub struct Topology {
    devices: Vec<Device>,
    ifaces: Vec<Iface>,
    device_by_name: HashMap<String, DeviceId>,
}

impl Topology {
    /// All devices.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(|i| DeviceId(i as u32))
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// Device record.
    pub fn device(&self, d: DeviceId) -> &Device {
        &self.devices[d.index()]
    }

    /// Interface record.
    pub fn iface(&self, i: IfaceId) -> &Iface {
        &self.ifaces[i.index()]
    }

    /// Look up a device by name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.device_by_name.get(name).copied()
    }

    /// Look up an interface by `device` + local name.
    pub fn iface_by_name(&self, device: &str, iface: &str) -> Option<IfaceId> {
        let d = self.device_by_name(device)?;
        self.devices[d.index()]
            .ifaces
            .iter()
            .copied()
            .find(|&i| self.ifaces[i.index()].name == iface)
    }

    /// Display name `"device:iface"` for an interface.
    pub fn iface_name(&self, i: IfaceId) -> String {
        let rec = self.iface(i);
        format!("{}:{}", self.device(rec.device).name, rec.name)
    }

    /// The device owning an interface.
    pub fn owner(&self, i: IfaceId) -> DeviceId {
        self.iface(i).device
    }

    /// The link peer, if any.
    pub fn peer(&self, i: IfaceId) -> Option<IfaceId> {
        self.iface(i).peer
    }

    /// All interfaces of a device.
    pub fn device_ifaces(&self, d: DeviceId) -> &[IfaceId] {
        &self.devices[d.index()].ifaces
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} devices, {} interfaces",
            self.devices.len(),
            self.ifaces.len()
        )?;
        for d in self.devices() {
            let dev = self.device(d);
            write!(f, "  {}:", dev.name)?;
            for &i in &dev.ifaces {
                match self.peer(i) {
                    Some(p) => write!(f, " {}<->{}", self.iface(i).name, self.iface_name(p))?,
                    None => write!(f, " {}(ext)", self.iface(i).name)?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Incremental topology construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Fresh, empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Add a device; names must be unique.
    pub fn device(&mut self, name: &str) -> DeviceId {
        assert!(
            !self.topo.device_by_name.contains_key(name),
            "duplicate device name {name:?}"
        );
        let id = DeviceId(self.topo.devices.len() as u32);
        self.topo.devices.push(Device {
            name: name.to_string(),
            ifaces: Vec::new(),
        });
        self.topo.device_by_name.insert(name.to_string(), id);
        id
    }

    /// Add an interface to a device; names must be unique per device.
    pub fn iface(&mut self, device: DeviceId, name: &str) -> IfaceId {
        let dup = self.topo.devices[device.index()]
            .ifaces
            .iter()
            .any(|&i| self.topo.ifaces[i.index()].name == name);
        assert!(!dup, "duplicate interface name {name:?} on device");
        let id = IfaceId(self.topo.ifaces.len() as u32);
        self.topo.ifaces.push(Iface {
            name: name.to_string(),
            device,
            peer: None,
        });
        self.topo.devices[device.index()].ifaces.push(id);
        id
    }

    /// Link two (unlinked) interfaces of different devices.
    pub fn link(&mut self, a: IfaceId, b: IfaceId) {
        assert_ne!(a, b, "cannot link an interface to itself");
        assert_ne!(
            self.topo.ifaces[a.index()].device,
            self.topo.ifaces[b.index()].device,
            "cannot link two interfaces of the same device"
        );
        assert!(
            self.topo.ifaces[a.index()].peer.is_none(),
            "interface already linked"
        );
        assert!(
            self.topo.ifaces[b.index()].peer.is_none(),
            "interface already linked"
        );
        self.topo.ifaces[a.index()].peer = Some(b);
        self.topo.ifaces[b.index()].peer = Some(a);
    }

    /// Finish.
    pub fn build(self) -> Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_routers() -> (Topology, IfaceId, IfaceId) {
        let mut b = TopologyBuilder::new();
        let a = b.device("A");
        let c = b.device("C");
        let a1 = b.iface(a, "1");
        let c1 = b.iface(c, "1");
        b.link(a1, c1);
        (b.build(), a1, c1)
    }

    #[test]
    fn build_and_lookup() {
        let (t, a1, c1) = two_routers();
        assert_eq!(t.device_count(), 2);
        assert_eq!(t.iface_count(), 2);
        assert_eq!(t.device_by_name("A"), Some(DeviceId(0)));
        assert_eq!(t.device_by_name("Z"), None);
        assert_eq!(t.iface_by_name("A", "1"), Some(a1));
        assert_eq!(t.iface_by_name("A", "9"), None);
        assert_eq!(t.iface_name(c1), "C:1");
        assert_eq!(t.owner(a1), DeviceId(0));
    }

    #[test]
    fn links_are_symmetric() {
        let (t, a1, c1) = two_routers();
        assert_eq!(t.peer(a1), Some(c1));
        assert_eq!(t.peer(c1), Some(a1));
    }

    #[test]
    fn unlinked_interface_is_external() {
        let mut b = TopologyBuilder::new();
        let a = b.device("A");
        let a1 = b.iface(a, "1");
        let t = b.build();
        assert_eq!(t.peer(a1), None);
    }

    #[test]
    #[should_panic(expected = "duplicate device name")]
    fn duplicate_device_rejected() {
        let mut b = TopologyBuilder::new();
        b.device("A");
        b.device("A");
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.device("A");
        let c = b.device("C");
        let d = b.device("D");
        let a1 = b.iface(a, "1");
        let c1 = b.iface(c, "1");
        let d1 = b.iface(d, "1");
        b.link(a1, c1);
        b.link(a1, d1);
    }

    #[test]
    #[should_panic(expected = "same device")]
    fn self_device_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.device("A");
        let a1 = b.iface(a, "1");
        let a2 = b.iface(a, "2");
        b.link(a1, a2);
    }
}
