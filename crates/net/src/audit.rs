//! Input-data auditing — the §7 deployment lesson as a library feature.
//!
//! The paper's main deployment challenge was data quality: "routing
//! information and parsed configuration format are incomplete or
//! inaccurate in practice … we develop an internal auditing tool to timely
//! monitor and manually repair the quality of the data Jinjing relies
//! on." This module is that tool for the reproduction's data model: it
//! inspects a [`Network`] + [`AclConfig`] pair and reports the anomalies
//! that would silently degrade check/fix/generate results.

use crate::config::AclConfig;
use crate::ids::{DeviceId, IfaceId, Slot};
use crate::network::{Network, Scope};
use jinjing_acl::PacketSet;
use std::collections::HashSet;
use std::fmt;

/// One data-quality finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditFinding {
    /// A device has no route for an announced prefix (disconnected
    /// topology or missing FIB data).
    UnroutedPrefix {
        /// The device lacking the route.
        device: DeviceId,
        /// The announced prefix (display form).
        prefix: String,
    },
    /// Traffic admitted by the matrix at an interface that can never leave
    /// the network (black hole): no path carries part of it.
    BlackholedTraffic {
        /// The ingress interface.
        iface: IfaceId,
        /// A witness packet of the stranded traffic.
        witness: jinjing_acl::Packet,
    },
    /// An ACL is configured on a slot no enumerated path traverses — it
    /// can never filter anything under the current routing + traffic data.
    UnusedAcl {
        /// The idle slot.
        slot: Slot,
    },
    /// A rule is fully shadowed by earlier rules (dead configuration —
    /// often a symptom of stale data or botched merges).
    ShadowedRule {
        /// The slot holding the ACL.
        slot: Slot,
        /// Index of the dead rule.
        rule_index: usize,
    },
    /// The traffic matrix admits traffic at an interface that is not a
    /// border of the whole network (it has an internal peer), which the
    /// path enumeration will ignore.
    EnteringAtInternalIface {
        /// The suspicious interface.
        iface: IfaceId,
    },
}

impl AuditFinding {
    /// Human-readable rendering against a network (for reports/CLI).
    pub fn display(&self, net: &Network) -> String {
        let topo = net.topology();
        match self {
            AuditFinding::UnroutedPrefix { device, prefix } => format!(
                "unrouted prefix: {} has no route for {prefix}",
                topo.device(*device).name
            ),
            AuditFinding::BlackholedTraffic { iface, witness } => format!(
                "black hole: traffic entering {} (e.g. {witness}) reaches no egress",
                topo.iface_name(*iface)
            ),
            AuditFinding::UnusedAcl { slot } => format!(
                "unused ACL: {}-{} lies on no path of the admitted traffic",
                topo.iface_name(slot.iface),
                slot.dir
            ),
            AuditFinding::ShadowedRule { slot, rule_index } => format!(
                "shadowed rule: {}-{} rule #{} can never match",
                topo.iface_name(slot.iface),
                slot.dir,
                rule_index
            ),
            AuditFinding::EnteringAtInternalIface { iface } => format!(
                "traffic matrix entry at internal interface {}",
                topo.iface_name(*iface)
            ),
        }
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Audit a network + configuration. Findings are advisory: the primitives
/// stay sound on anomalous data, but their *coverage* silently shrinks
/// (e.g. black-holed traffic is never verified) — exactly what the paper's
/// operators needed to monitor.
pub fn audit(net: &Network, config: &AclConfig) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let topo = net.topology();
    let scope = Scope::whole(topo);

    // 1. Every device should route every announced prefix.
    for (prefix, _) in net.announced() {
        let sample = jinjing_acl::Packet::to_dst(prefix.addr() | 1);
        for d in topo.devices() {
            if net.fib(d).lookup(&sample).is_empty() {
                findings.push(AuditFinding::UnroutedPrefix {
                    device: d,
                    prefix: prefix.to_string(),
                });
            }
        }
    }

    // 5. Matrix entries on internal interfaces (the scope-level
    // entering_traffic silently drops them, so inspect the raw entries).
    let border: HashSet<IfaceId> = net.border_ifaces(&scope).into_iter().collect();
    for (iface, set) in net.entering_entries() {
        if !set.is_empty() && !border.contains(iface) {
            findings.push(AuditFinding::EnteringAtInternalIface { iface: *iface });
        }
    }

    // 2. Black holes, and collect path-covered slots for (3).
    let mut covered_slots: HashSet<Slot> = HashSet::new();
    for (iface, admitted) in net.entering_traffic(&scope) {
        let paths = net.paths_for_class(&scope, iface, &admitted);
        let mut carried = PacketSet::empty();
        for p in &paths {
            for &s in &p.slots {
                covered_slots.insert(s);
            }
            carried = carried.union(&p.carried);
        }
        let stranded = admitted.subtract(&carried);
        if let Some(witness) = stranded.sample() {
            findings.push(AuditFinding::BlackholedTraffic { iface, witness });
        }
    }

    // 3. ACLs on slots never traversed.
    for slot in config.slots() {
        if !covered_slots.contains(&slot) {
            findings.push(AuditFinding::UnusedAcl { slot });
        }
    }

    // 4. Fully shadowed rules.
    for slot in config.slots() {
        let acl = config.get(slot).expect("listed slot");
        let mut seen = PacketSet::empty();
        for (i, rule) in acl.rules().iter().enumerate() {
            let m = PacketSet::from_cube(rule.matches.cube());
            if m.is_subset(&seen) {
                findings.push(AuditFinding::ShadowedRule {
                    slot,
                    rule_index: i,
                });
            }
            seen = seen.union(&m);
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::{pfx, prefix_set};
    use crate::topology::TopologyBuilder;
    use jinjing_acl::AclBuilder;

    /// A ─ B chain plus a disconnected island C.
    fn setup() -> (Network, AclConfig, Vec<IfaceId>) {
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let b = tb.device("B");
        let c = tb.device("C"); // island
        let a0 = tb.iface(a, "0");
        let a1 = tb.iface(a, "1");
        let b0 = tb.iface(b, "0");
        let b1 = tb.iface(b, "1");
        let c0 = tb.iface(c, "0");
        tb.link(a1, b0);
        let mut net = Network::new(tb.build());
        net.announce(pfx("1.0.0.0/8"), b1);
        net.compute_routes();
        net.set_entering(a0, prefix_set(&pfx("1.0.0.0/8")));
        (net, AclConfig::new(), vec![a0, a1, b0, b1, c0])
    }

    #[test]
    fn clean_data_produces_no_findings() {
        let (net, config, _) = setup();
        let findings: Vec<_> = audit(&net, &config)
            .into_iter()
            // The island C legitimately cannot route 1/8.
            .filter(|f| !matches!(f, AuditFinding::UnroutedPrefix { .. }))
            .collect();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn island_devices_are_flagged_unrouted() {
        let (net, config, _) = setup();
        let findings = audit(&net, &config);
        assert!(findings.iter().any(|f| matches!(
            f,
            AuditFinding::UnroutedPrefix { device, .. }
                if net.topology().device(*device).name == "C"
        )));
    }

    #[test]
    fn blackholed_traffic_is_flagged() {
        let (mut net, config, ifs) = setup();
        // Admit traffic for an unannounced prefix at A:0 — nothing routes it.
        net.set_entering(
            ifs[0],
            prefix_set(&pfx("1.0.0.0/8")).union(&prefix_set(&pfx("9.0.0.0/8"))),
        );
        let findings = audit(&net, &config);
        assert!(findings.iter().any(|f| matches!(
            f,
            AuditFinding::BlackholedTraffic { witness, .. } if witness.dip >> 24 == 9
        )));
    }

    #[test]
    fn unused_acl_is_flagged() {
        let (net, mut config, ifs) = setup();
        // An ACL on the island's interface can never filter anything.
        config.set(
            Slot::ingress(ifs[4]),
            AclBuilder::default_permit().deny_dst("1.0.0.0/8").build(),
        );
        let findings = audit(&net, &config);
        assert!(findings
            .iter()
            .any(|f| matches!(f, AuditFinding::UnusedAcl { .. })));
        // And an ACL on the used path is not flagged.
        let mut config2 = AclConfig::new();
        config2.set(
            Slot::ingress(ifs[0]),
            AclBuilder::default_permit().deny_dst("1.2.0.0/16").build(),
        );
        let findings2 = audit(&net, &config2);
        assert!(!findings2
            .iter()
            .any(|f| matches!(f, AuditFinding::UnusedAcl { .. })));
    }

    #[test]
    fn shadowed_rules_are_flagged_with_index() {
        let (net, mut config, ifs) = setup();
        config.set(
            Slot::ingress(ifs[0]),
            AclBuilder::default_permit()
                .deny_dst("1.0.0.0/8")
                .permit_dst("1.2.0.0/16") // shadowed by the /8 above
                .build(),
        );
        let findings = audit(&net, &config);
        assert!(findings
            .iter()
            .any(|f| matches!(f, AuditFinding::ShadowedRule { rule_index: 1, .. })));
    }

    #[test]
    fn entering_at_internal_iface_is_flagged() {
        let (mut net, config, ifs) = setup();
        net.set_entering(ifs[1], prefix_set(&pfx("1.0.0.0/8"))); // A:1 is linked
        let findings = audit(&net, &config);
        assert!(findings
            .iter()
            .any(|f| matches!(f, AuditFinding::EnteringAtInternalIface { .. })));
    }

    #[test]
    fn display_renders_names() {
        let (net, mut config, ifs) = setup();
        config.set(
            Slot::ingress(ifs[4]),
            AclBuilder::default_permit().deny_dst("1.0.0.0/8").build(),
        );
        for f in audit(&net, &config) {
            let text = f.display(&net);
            assert!(!text.is_empty());
        }
    }
}
