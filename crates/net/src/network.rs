//! The assembled network: topology + routing + announcements, with scope,
//! border, path-enumeration and traffic-extraction queries.
//!
//! This module plays the role of the paper's "internal IP management
//! system": given prefix announcements at external interfaces it computes
//! shortest-path (ECMP) FIBs, and it answers the queries Algorithm 1 needs —
//! which interfaces border a scope, what traffic enters it, and which paths
//! a traffic class can take across it.

use crate::fib::{prefix_set, Fib};
use crate::ids::{DeviceId, Dir, IfaceId, Slot};
use crate::topology::Topology;
use jinjing_acl::{IpPrefix, PacketSet};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// A management scope `Ω`: a set of devices whose ACLs are under
/// consideration (§3.1 `scope`).
#[derive(Debug, Clone, Default)]
pub struct Scope {
    devices: HashSet<DeviceId>,
}

impl Scope {
    /// Scope over the given devices.
    pub fn of(devices: impl IntoIterator<Item = DeviceId>) -> Scope {
        Scope {
            devices: devices.into_iter().collect(),
        }
    }

    /// Scope covering the entire network.
    pub fn whole(topo: &Topology) -> Scope {
        Scope::of(topo.devices())
    }

    /// Membership test.
    pub fn contains(&self, d: DeviceId) -> bool {
        self.devices.contains(&d)
    }

    /// The devices, in unspecified order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices.iter().copied()
    }

    /// Number of devices in scope.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// A path across a scope: the alternating in/out ACL slots it traverses,
/// starting at an ingress border slot and ending at an egress border slot.
/// Matches the paper's interface lists (`⟨A1, A4, D1, D3⟩` becomes
/// `[A1/in, A4/out, D1/in, D3/out]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The traversed ACL slots, in order.
    pub slots: Vec<Slot>,
    /// The exact set of packets the routing state carries along this path:
    /// the intersection of the forwarding predicates `g` at every hop.
    /// A traffic class crosses the scope on this path iff it intersects
    /// `carried` (and is contained in it when the class is an FEC).
    pub carried: PacketSet,
}

impl Path {
    /// The border interface where the path enters the scope.
    pub fn ingress(&self) -> IfaceId {
        self.slots.first().expect("path is never empty").iface
    }

    /// The border interface where the path leaves the scope.
    pub fn egress(&self) -> IfaceId {
        self.slots.last().expect("path is never empty").iface
    }

    /// Render as the paper's interface-list notation.
    pub fn display(&self, topo: &Topology) -> String {
        let names: Vec<String> = self
            .slots
            .iter()
            .map(|s| topo.iface_name(s.iface))
            .collect();
        format!("⟨{}⟩", names.join(", "))
    }
}

/// Topology + per-device FIBs + prefix announcements.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    fibs: Vec<Fib>,
    /// Memoized forwarding predicates per device (compiling a FIB into
    /// exact packet sets is the hottest substrate operation — path
    /// enumeration hits it at every DFS step). Cleared on any FIB change.
    predicate_cache: Mutex<HashMap<DeviceId, Arc<HashMap<IfaceId, PacketSet>>>>,
    /// Prefixes announced at external interfaces (where that traffic
    /// ultimately exits the modeled network).
    announced: Vec<(IpPrefix, IfaceId)>,
    /// Explicit ingress-traffic matrix. When non-empty, only the listed
    /// interfaces admit traffic (and only the listed sets); when empty,
    /// every border interface admits the full announced universe.
    entering: Vec<(IfaceId, PacketSet)>,
}

impl Clone for Network {
    fn clone(&self) -> Network {
        Network {
            topo: self.topo.clone(),
            fibs: self.fibs.clone(),
            predicate_cache: Mutex::new(HashMap::new()),
            announced: self.announced.clone(),
            entering: self.entering.clone(),
        }
    }
}

impl Network {
    /// Wrap a topology with empty FIBs.
    pub fn new(topo: Topology) -> Network {
        let n = topo.device_count();
        Network {
            topo,
            fibs: (0..n).map(|_| Fib::new()).collect(),
            predicate_cache: Mutex::new(HashMap::new()),
            announced: Vec::new(),
            entering: Vec::new(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// A device's FIB.
    pub fn fib(&self, d: DeviceId) -> &Fib {
        &self.fibs[d.index()]
    }

    /// Mutable FIB access (for hand-crafted routing like the Figure 1
    /// example). Invalidates the forwarding-predicate cache.
    pub fn fib_mut(&mut self, d: DeviceId) -> &mut Fib {
        self.predicate_cache.lock().expect("cache lock").clear();
        &mut self.fibs[d.index()]
    }

    /// Record that `prefix` is reachable out of the external interface
    /// `ext`, and should be routed there from everywhere.
    pub fn announce(&mut self, prefix: IpPrefix, ext: IfaceId) {
        assert!(
            self.topo.peer(ext).is_none(),
            "announcements must sit on external interfaces"
        );
        self.announced.push((prefix, ext));
    }

    /// The announcements.
    pub fn announced(&self) -> &[(IpPrefix, IfaceId)] {
        &self.announced
    }

    /// Compute shortest-path (ECMP) FIBs for every announcement: each
    /// device routes the prefix toward the announcing device along all
    /// shortest paths; the announcing device routes it out of the external
    /// interface. Pre-existing FIB entries are preserved.
    pub fn compute_routes(&mut self) {
        self.predicate_cache.lock().expect("cache lock").clear();
        let announcements = self.announced.clone();
        for (prefix, ext) in announcements {
            let target = self.topo.owner(ext);
            // BFS distances to `target` over links.
            let mut dist: HashMap<DeviceId, u32> = HashMap::new();
            dist.insert(target, 0);
            let mut q = VecDeque::from([target]);
            while let Some(d) = q.pop_front() {
                let dd = dist[&d];
                for &i in self.topo.device_ifaces(d) {
                    if let Some(peer) = self.topo.peer(i) {
                        let nd = self.topo.owner(peer);
                        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nd) {
                            e.insert(dd + 1);
                            q.push_back(nd);
                        }
                    }
                }
            }
            // Next hops: every interface whose peer device is one step
            // closer to the target.
            for dev in self.topo.devices() {
                let Some(&dd) = dist.get(&dev) else { continue };
                if dev == target {
                    self.fibs[dev.index()].add(prefix, ext);
                    continue;
                }
                for &i in self.topo.device_ifaces(dev) {
                    if let Some(peer) = self.topo.peer(i) {
                        let nd = self.topo.owner(peer);
                        if dist.get(&nd) == Some(&(dd - 1)) {
                            self.fibs[dev.index()].add(prefix, i);
                        }
                    }
                }
            }
        }
    }

    /// Border interfaces of a scope: interfaces of scope devices whose peer
    /// lies outside the scope (or that are external).
    pub fn border_ifaces(&self, scope: &Scope) -> Vec<IfaceId> {
        let mut out = Vec::new();
        for d in self.topo.devices() {
            if !scope.contains(d) {
                continue;
            }
            for &i in self.topo.device_ifaces(d) {
                let is_border = match self.topo.peer(i) {
                    None => true,
                    Some(p) => !scope.contains(self.topo.owner(p)),
                };
                if is_border {
                    out.push(i);
                }
            }
        }
        out.sort();
        out
    }

    /// The forwarding predicates of one device (memoized).
    pub fn forwarding_predicates(&self, d: DeviceId) -> Arc<HashMap<IfaceId, PacketSet>> {
        let mut cache = self.predicate_cache.lock().expect("cache lock");
        cache
            .entry(d)
            .or_insert_with(|| Arc::new(self.fibs[d.index()].forwarding_predicates()))
            .clone()
    }

    /// The forwarding-predicate family `G_Ω` of a scope: every
    /// `(out-interface, packet set)` pair of every scope device. Input to
    /// FEC derivation (Eq. 2).
    pub fn scope_predicates(&self, scope: &Scope) -> Vec<(IfaceId, PacketSet)> {
        let mut out = Vec::new();
        let mut devs: Vec<DeviceId> = scope.devices().collect();
        devs.sort();
        for d in devs {
            let mut preds: Vec<(IfaceId, PacketSet)> = self
                .forwarding_predicates(d)
                .iter()
                .map(|(i, g)| (*i, g.clone()))
                .collect();
            preds.sort_by_key(|(i, _)| *i);
            out.extend(preds);
        }
        out
    }

    /// Declare the traffic entering the network at one interface (the
    /// paper's "IP management system" data). Once any entry is set, the
    /// traffic matrix is *explicit*: interfaces without an entry admit no
    /// traffic.
    pub fn set_entering(&mut self, iface: IfaceId, set: PacketSet) {
        if let Some(e) = self.entering.iter_mut().find(|(i, _)| *i == iface) {
            e.1 = set;
        } else {
            self.entering.push((iface, set));
        }
    }

    /// The announced destination universe (all routable traffic).
    pub fn announced_universe(&self) -> PacketSet {
        let mut universe = PacketSet::empty();
        for (p, _) in &self.announced {
            universe = universe.union(&prefix_set(p));
        }
        universe
    }

    /// The explicit traffic-matrix entries (empty when no matrix was
    /// declared and every border admits the universe).
    pub fn entering_entries(&self) -> &[(IfaceId, PacketSet)] {
        &self.entering
    }

    /// The traffic admitted at one interface: its explicit matrix entry, or
    /// (when no matrix was declared) the full announced universe.
    pub fn entering_at(&self, iface: IfaceId) -> PacketSet {
        if self.entering.is_empty() {
            return self.announced_universe();
        }
        self.entering
            .iter()
            .find(|(i, _)| *i == iface)
            .map_or_else(PacketSet::empty, |(_, s)| s.clone())
    }

    /// The traffic entering a scope — the `X_Ω` of Algorithm 1: per ingress
    /// border interface, what the traffic matrix admits there.
    pub fn entering_traffic(&self, scope: &Scope) -> Vec<(IfaceId, PacketSet)> {
        let mut out = Vec::new();
        for b in self.border_ifaces(scope) {
            let t = self.entering_at(b);
            if !t.is_empty() {
                out.push((b, t));
            }
        }
        out
    }

    /// Enumerate the paths a traffic class can take across the scope
    /// starting at ingress border interface `from` — the per-class `Y` of
    /// Algorithm 1. The class should be forwarding-uniform (an FEC or
    /// finer); membership on a hop is decided by set intersection, so a
    /// coarser class yields the union of its members' paths.
    ///
    /// Paths are loop-free (device-visited guard) and end at the first
    /// border interface the traffic is forwarded out of.
    pub fn paths_for_class(&self, scope: &Scope, from: IfaceId, class: &PacketSet) -> Vec<Path> {
        let dev = self.topo.owner(from);
        if !scope.contains(dev) || class.is_empty() {
            return Vec::new();
        }
        let mut paths = Vec::new();
        let mut visited: HashSet<DeviceId> = HashSet::new();
        let mut slots: Vec<Slot> = vec![Slot {
            iface: from,
            dir: Dir::In,
        }];
        self.dfs_paths(scope, dev, class, &mut visited, &mut slots, &mut paths);
        paths
    }

    fn dfs_paths(
        &self,
        scope: &Scope,
        dev: DeviceId,
        carried: &PacketSet,
        visited: &mut HashSet<DeviceId>,
        slots: &mut Vec<Slot>,
        paths: &mut Vec<Path>,
    ) {
        visited.insert(dev);
        let mut preds: Vec<(IfaceId, PacketSet)> = self
            .forwarding_predicates(dev)
            .iter()
            .map(|(i, g)| (*i, g.clone()))
            .collect();
        preds.sort_by_key(|(i, _)| *i);
        let in_iface = slots.last().expect("at least the ingress slot").iface;
        for (out, g) in preds {
            if out == in_iface {
                continue;
            }
            let narrowed = carried.intersect(&g);
            if narrowed.is_empty() {
                continue;
            }
            slots.push(Slot {
                iface: out,
                dir: Dir::Out,
            });
            match self.topo.peer(out) {
                // Exits the scope (external, or peer outside scope).
                None => paths.push(Path {
                    slots: slots.clone(),
                    carried: narrowed.clone(),
                }),
                Some(peer) if !scope.contains(self.topo.owner(peer)) => paths.push(Path {
                    slots: slots.clone(),
                    carried: narrowed.clone(),
                }),
                Some(peer) => {
                    let nd = self.topo.owner(peer);
                    if !visited.contains(&nd) {
                        slots.push(Slot {
                            iface: peer,
                            dir: Dir::In,
                        });
                        self.dfs_paths(scope, nd, &narrowed, visited, slots, paths);
                        slots.pop();
                    }
                }
            }
            slots.pop();
        }
        visited.remove(&dev);
    }

    /// All paths across the scope from every ingress border interface for
    /// the class — `P` restricted to the class and to the traffic matrix
    /// (a border interface only originates paths for traffic it admits).
    pub fn all_paths_for_class(&self, scope: &Scope, class: &PacketSet) -> Vec<Path> {
        let mut out = Vec::new();
        for b in self.border_ifaces(scope) {
            let admitted = class.intersect(&self.entering_at(b));
            if admitted.is_empty() {
                continue;
            }
            out.extend(self.paths_for_class(scope, b, &admitted));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::pfx;
    use crate::topology::TopologyBuilder;
    use jinjing_acl::Packet;

    /// A ─ B ─ C chain with external interfaces at both ends.
    ///   ext─[A0] A [A1]──[B0] B [B1]──[C0] C [C1]─ext
    fn chain() -> (Network, Vec<IfaceId>) {
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let b = tb.device("B");
        let c = tb.device("C");
        let a0 = tb.iface(a, "0");
        let a1 = tb.iface(a, "1");
        let b0 = tb.iface(b, "0");
        let b1 = tb.iface(b, "1");
        let c0 = tb.iface(c, "0");
        let c1 = tb.iface(c, "1");
        tb.link(a1, b0);
        tb.link(b1, c0);
        let mut net = Network::new(tb.build());
        net.announce(pfx("1.0.0.0/8"), c1); // 1/8 exits at C:1
        net.announce(pfx("2.0.0.0/8"), a0); // 2/8 exits at A:0
        net.compute_routes();
        (net, vec![a0, a1, b0, b1, c0, c1])
    }

    #[test]
    fn routes_follow_shortest_path() {
        let (net, ifs) = chain();
        let p1 = Packet::to_dst(0x0100_0001);
        // A routes 1/8 toward B; B toward C; C out the external iface.
        assert_eq!(net.fib(DeviceId(0)).lookup(&p1), vec![ifs[1]]);
        assert_eq!(net.fib(DeviceId(1)).lookup(&p1), vec![ifs[3]]);
        assert_eq!(net.fib(DeviceId(2)).lookup(&p1), vec![ifs[5]]);
        let p2 = Packet::to_dst(0x0200_0001);
        assert_eq!(net.fib(DeviceId(2)).lookup(&p2), vec![ifs[4]]);
        assert_eq!(net.fib(DeviceId(0)).lookup(&p2), vec![ifs[0]]);
    }

    #[test]
    fn border_of_sub_scope() {
        let (net, ifs) = chain();
        let scope = Scope::of([DeviceId(0), DeviceId(1)]); // A, B
        let border = net.border_ifaces(&scope);
        // A0 external, B1 links to out-of-scope C.
        assert_eq!(border, vec![ifs[0], ifs[3]]);
        let whole = Scope::whole(net.topology());
        assert_eq!(net.border_ifaces(&whole), vec![ifs[0], ifs[5]]);
    }

    #[test]
    fn paths_cross_the_whole_chain() {
        let (net, ifs) = chain();
        let scope = Scope::whole(net.topology());
        let class = prefix_set(&pfx("1.0.0.0/8"));
        let paths = net.paths_for_class(&scope, ifs[0], &class);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.ingress(), ifs[0]);
        assert_eq!(p.egress(), ifs[5]);
        assert_eq!(p.slots.len(), 6); // in/out at each of A, B, C
        assert_eq!(p.display(net.topology()), "⟨A:0, A:1, B:0, B:1, C:0, C:1⟩");
        // Direction alternates starting with In.
        for (k, s) in p.slots.iter().enumerate() {
            assert_eq!(s.dir, if k % 2 == 0 { Dir::In } else { Dir::Out });
        }
    }

    #[test]
    fn no_path_for_unrouted_class() {
        let (net, ifs) = chain();
        let scope = Scope::whole(net.topology());
        let class = prefix_set(&pfx("9.0.0.0/8"));
        assert!(net.paths_for_class(&scope, ifs[0], &class).is_empty());
    }

    #[test]
    fn path_stops_at_scope_border() {
        let (net, ifs) = chain();
        let scope = Scope::of([DeviceId(0), DeviceId(1)]);
        let class = prefix_set(&pfx("1.0.0.0/8"));
        let paths = net.paths_for_class(&scope, ifs[0], &class);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].egress(), ifs[3]); // leaves at B:1 toward C
        assert_eq!(paths[0].slots.len(), 4);
    }

    #[test]
    fn ecmp_produces_multiple_paths() {
        // Diamond: A → {B, C} → D, destination behind D.
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let b = tb.device("B");
        let c = tb.device("C");
        let d = tb.device("D");
        let a0 = tb.iface(a, "0");
        let ab = tb.iface(a, "b");
        let ac = tb.iface(a, "c");
        let ba = tb.iface(b, "a");
        let bd = tb.iface(b, "d");
        let ca = tb.iface(c, "a");
        let cd = tb.iface(c, "d");
        let db = tb.iface(d, "b");
        let dc = tb.iface(d, "c");
        let d0 = tb.iface(d, "0");
        tb.link(ab, ba);
        tb.link(ac, ca);
        tb.link(bd, db);
        tb.link(cd, dc);
        let mut net = Network::new(tb.build());
        net.announce(pfx("1.0.0.0/8"), d0);
        net.compute_routes();
        let scope = Scope::whole(net.topology());
        let class = prefix_set(&pfx("1.0.0.0/8"));
        let paths = net.paths_for_class(&scope, a0, &class);
        assert_eq!(paths.len(), 2, "two ECMP paths through the diamond");
        let egresses: HashSet<IfaceId> = paths.iter().map(Path::egress).collect();
        assert_eq!(egresses, HashSet::from([d0]));
    }

    #[test]
    fn entering_traffic_covers_announcements() {
        let (net, _) = chain();
        let scope = Scope::whole(net.topology());
        let entering = net.entering_traffic(&scope);
        assert_eq!(entering.len(), 2); // two border ifaces
        for (_, set) in entering {
            assert!(set.contains(&Packet::to_dst(0x0100_0001)));
            assert!(set.contains(&Packet::to_dst(0x0200_0001)));
            assert!(!set.contains(&Packet::to_dst(0x0900_0001)));
        }
    }

    #[test]
    #[should_panic(expected = "external interfaces")]
    fn announce_on_internal_iface_rejected() {
        let (mut net, ifs) = chain();
        net.announce(pfx("9.0.0.0/8"), ifs[1]); // A:1 is linked
    }
}
