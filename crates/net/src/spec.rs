//! On-disk network and ACL-configuration specifications.
//!
//! Jinjing's inputs in production come from an IP management system; the
//! equivalent for this library is a pair of JSON documents:
//!
//! - a [`NetworkSpec`]: devices, interfaces, links, prefix announcements,
//!   optional static FIB entries and an optional directional traffic
//!   matrix;
//! - an [`AclConfigSpec`]: the ACL text per interface slot.
//!
//! Both round-trip losslessly through [`Network`]/[`AclConfig`] (up to
//! route recomputation) and power the `jinjing` command-line tool. Example:
//!
//! ```json
//! {
//!   "devices": [
//!     {"name": "A", "interfaces": ["1", "2"]},
//!     {"name": "B", "interfaces": ["1"]}
//!   ],
//!   "links": [["A:2", "B:1"]],
//!   "announcements": [{"prefix": "1.0.0.0/8", "interface": "B:1"}],
//!   "entering": [{"interface": "A:1", "dst_prefixes": ["1.0.0.0/8"]}]
//! }
//! ```

use crate::config::AclConfig;
use crate::ids::{Dir, IfaceId, Slot};
use crate::network::Network;
use crate::topology::TopologyBuilder;
use jinjing_acl::parse::parse_acl;
use jinjing_acl::parse::parse_prefix;
use jinjing_acl::PacketSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error binding a spec to concrete objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One device and its interface names.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device name (unique).
    pub name: String,
    /// Interface names (unique per device).
    pub interfaces: Vec<String>,
}

/// A prefix announced at an external interface.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct AnnouncementSpec {
    /// Prefix literal, e.g. `"10.1.0.0/24"`.
    pub prefix: String,
    /// `"device:interface"` of the (external) exit point.
    pub interface: String,
}

/// A static FIB entry (for hand-crafted routing; optional — announcements
/// plus shortest-path computation usually suffice).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct RouteSpec {
    /// Owning device.
    pub device: String,
    /// Destination prefix literal.
    pub prefix: String,
    /// Output `"device:interface"` (must belong to `device`).
    pub out: String,
}

/// Traffic admitted at one interface (directional traffic matrix entry).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct EnteringSpec {
    /// `"device:interface"` where the traffic enters.
    pub interface: String,
    /// Destination prefixes admitted there.
    pub dst_prefixes: Vec<String>,
}

/// A whole network document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq, Default)]
pub struct NetworkSpec {
    /// Devices and their interfaces.
    pub devices: Vec<DeviceSpec>,
    /// Bidirectional links as `["A:1", "B:2"]` pairs.
    #[serde(default)]
    pub links: Vec<(String, String)>,
    /// Prefix announcements at external interfaces.
    #[serde(default)]
    pub announcements: Vec<AnnouncementSpec>,
    /// Static FIB entries (applied after shortest-path computation).
    #[serde(default)]
    pub routes: Vec<RouteSpec>,
    /// Directional traffic matrix; empty = every border admits everything.
    #[serde(default)]
    pub entering: Vec<EnteringSpec>,
}

/// One configured ACL slot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct AclSlotSpec {
    /// `"device:interface"`.
    pub interface: String,
    /// `"in"` (default) or `"out"`.
    #[serde(default = "default_dir")]
    pub direction: String,
    /// Rule lines in the textual syntax of [`jinjing_acl::parse`], plus an
    /// optional trailing `default permit|deny`.
    pub acl: Vec<String>,
}

fn default_dir() -> String {
    "in".to_string()
}

/// A whole ACL configuration document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq, Default)]
pub struct AclConfigSpec {
    /// The configured slots.
    pub slots: Vec<AclSlotSpec>,
}

fn parse_iface_ref(net: &Network, s: &str) -> Result<IfaceId, SpecError> {
    let (dev, iface) = s
        .split_once(':')
        .ok_or_else(|| SpecError::new(format!("interface reference {s:?} needs device:iface")))?;
    net.topology()
        .iface_by_name(dev, iface)
        .ok_or_else(|| SpecError::new(format!("unknown interface {s:?}")))
}

impl NetworkSpec {
    /// Build the concrete [`Network`]: topology, announcements, computed
    /// routes (BFS/ECMP), static routes, traffic matrix.
    pub fn build(&self) -> Result<Network, SpecError> {
        let mut tb = TopologyBuilder::new();
        let mut by_name: std::collections::HashMap<String, IfaceId> =
            std::collections::HashMap::new();
        for d in &self.devices {
            let dev = tb.device(&d.name);
            for i in &d.interfaces {
                let id = tb.iface(dev, i);
                by_name.insert(format!("{}:{}", d.name, i), id);
            }
        }
        for (a, b) in &self.links {
            let fa = *by_name
                .get(a)
                .ok_or_else(|| SpecError::new(format!("unknown interface {a:?}")))?;
            let fb = *by_name
                .get(b)
                .ok_or_else(|| SpecError::new(format!("unknown interface {b:?}")))?;
            tb.link(fa, fb);
        }
        let mut net = Network::new(tb.build());
        for a in &self.announcements {
            let iface = parse_iface_ref(&net, &a.interface)?;
            let prefix = parse_prefix(&a.prefix)
                .map_err(|e| SpecError::new(format!("announcement {}: {e}", a.prefix)))?;
            net.announce(prefix, iface);
        }
        net.compute_routes();
        for r in &self.routes {
            let out = parse_iface_ref(&net, &r.out)?;
            let dev = net
                .topology()
                .device_by_name(&r.device)
                .ok_or_else(|| SpecError::new(format!("unknown device {:?}", r.device)))?;
            if net.topology().owner(out) != dev {
                return Err(SpecError::new(format!(
                    "route output {} does not belong to device {}",
                    r.out, r.device
                )));
            }
            let prefix = parse_prefix(&r.prefix)
                .map_err(|e| SpecError::new(format!("route {}: {e}", r.prefix)))?;
            net.fib_mut(dev).add(prefix, out);
        }
        for e in &self.entering {
            let iface = parse_iface_ref(&net, &e.interface)?;
            let mut set = PacketSet::empty();
            for p in &e.dst_prefixes {
                let prefix = parse_prefix(p)
                    .map_err(|err| SpecError::new(format!("entering {p}: {err}")))?;
                set = set.union(&crate::fib::prefix_set(&prefix));
            }
            net.set_entering(iface, set);
        }
        Ok(net)
    }

    /// Extract a spec from a live network (links, announcements and
    /// explicit traffic matrix; computed FIBs are *not* exported — they are
    /// recomputed on load).
    pub fn from_network(net: &Network) -> NetworkSpec {
        let topo = net.topology();
        let devices = topo
            .devices()
            .map(|d| DeviceSpec {
                name: topo.device(d).name.clone(),
                interfaces: topo
                    .device_ifaces(d)
                    .iter()
                    .map(|&i| topo.iface(i).name.clone())
                    .collect(),
            })
            .collect();
        let mut links = Vec::new();
        for d in topo.devices() {
            for &i in topo.device_ifaces(d) {
                if let Some(p) = topo.peer(i) {
                    if i < p {
                        links.push((topo.iface_name(i), topo.iface_name(p)));
                    }
                }
            }
        }
        let announcements = net
            .announced()
            .iter()
            .map(|(prefix, iface)| AnnouncementSpec {
                prefix: prefix.to_string(),
                interface: topo.iface_name(*iface),
            })
            .collect();
        // Export the explicit traffic matrix as prefix lists where the
        // entries are expressible that way (destination-only cubes);
        // arbitrary sets fall back to their cube decomposition's dst
        // prefixes, which is exact for matrices built from prefixes.
        let entering = net
            .entering_entries()
            .iter()
            .map(|(iface, set)| EnteringSpec {
                interface: topo.iface_name(*iface),
                dst_prefixes: jinjing_acl::decompose::set_to_matchspecs(set)
                    .into_iter()
                    .map(|m| m.dst.to_string())
                    .collect(),
            })
            .collect();
        NetworkSpec {
            devices,
            links,
            announcements,
            routes: Vec::new(),
            entering,
        }
    }
}

impl AclConfigSpec {
    /// Bind to a network, producing an [`AclConfig`].
    pub fn build(&self, net: &Network) -> Result<AclConfig, SpecError> {
        let mut config = AclConfig::new();
        for slot_spec in &self.slots {
            let iface = parse_iface_ref(net, &slot_spec.interface)?;
            let dir = match slot_spec.direction.as_str() {
                "in" => Dir::In,
                "out" => Dir::Out,
                other => {
                    return Err(SpecError::new(format!(
                        "direction must be in/out, got {other:?}"
                    )))
                }
            };
            let text = slot_spec.acl.join("\n");
            let acl = parse_acl(&text)
                .map_err(|e| SpecError::new(format!("acl at {}: {e}", slot_spec.interface)))?;
            config.set(Slot { iface, dir }, acl);
        }
        Ok(config)
    }

    /// Extract a spec from a live configuration.
    pub fn from_config(net: &Network, config: &AclConfig) -> AclConfigSpec {
        let topo = net.topology();
        let slots = config
            .slots()
            .into_iter()
            .map(|slot| {
                let acl = config.get(slot).expect("listed slot");
                let mut lines: Vec<String> = acl.rules().iter().map(|r| r.to_string()).collect();
                lines.push(format!("default {}", acl.default_action()));
                AclSlotSpec {
                    interface: topo.iface_name(slot.iface),
                    direction: slot.dir.to_string(),
                    acl: lines,
                }
            })
            .collect();
        AclConfigSpec { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::Packet;

    fn chain_spec() -> NetworkSpec {
        serde_json::from_str(
            r#"{
                "devices": [
                    {"name": "A", "interfaces": ["0", "1"]},
                    {"name": "B", "interfaces": ["0", "1"]}
                ],
                "links": [["A:1", "B:0"]],
                "announcements": [{"prefix": "1.0.0.0/8", "interface": "B:1"}],
                "entering": [{"interface": "A:0", "dst_prefixes": ["1.0.0.0/8"]}]
            }"#,
        )
        .expect("valid spec json")
    }

    #[test]
    fn build_routes_and_traffic() {
        let net = chain_spec().build().unwrap();
        assert_eq!(net.topology().device_count(), 2);
        let a = net.topology().device_by_name("A").unwrap();
        let p = Packet::to_dst(0x0100_0001);
        let outs = net.fib(a).lookup(&p);
        assert_eq!(outs.len(), 1);
        assert_eq!(net.topology().iface_name(outs[0]), "A:1");
        // Traffic matrix honored.
        let a0 = net.topology().iface_by_name("A", "0").unwrap();
        assert!(net.entering_at(a0).contains(&p));
        let b1 = net.topology().iface_by_name("B", "1").unwrap();
        assert!(net.entering_at(b1).is_empty());
    }

    #[test]
    fn acl_config_spec_binds_and_roundtrips() {
        let net = chain_spec().build().unwrap();
        let spec: AclConfigSpec = serde_json::from_str(
            r#"{"slots": [
                {"interface": "A:0", "acl": ["deny dst 1.2.0.0/16", "default permit"]},
                {"interface": "B:0", "direction": "out", "acl": ["permit all"]}
            ]}"#,
        )
        .unwrap();
        let config = spec.build(&net).unwrap();
        assert_eq!(config.len(), 2);
        let a0 = net.topology().iface_by_name("A", "0").unwrap();
        assert!(!config.slot_permits(Slot::ingress(a0), &Packet::to_dst(0x0102_0304)));
        // Round-trip through from_config/build preserves semantics.
        let exported = AclConfigSpec::from_config(&net, &config);
        let back = exported.build(&net).unwrap();
        for slot in config.slots() {
            assert!(back
                .get(slot)
                .unwrap()
                .equivalent(config.get(slot).unwrap()));
        }
    }

    #[test]
    fn network_spec_roundtrip() {
        let net = chain_spec().build().unwrap();
        let exported = NetworkSpec::from_network(&net);
        let rebuilt = exported.build().unwrap();
        assert_eq!(
            rebuilt.topology().device_count(),
            net.topology().device_count()
        );
        assert_eq!(rebuilt.announced().len(), net.announced().len());
        // Routing equivalent after recomputation.
        let a = rebuilt.topology().device_by_name("A").unwrap();
        let p = Packet::to_dst(0x0100_0001);
        assert_eq!(rebuilt.fib(a).lookup(&p).len(), 1);
    }

    #[test]
    fn static_routes_and_errors() {
        let mut spec = chain_spec();
        spec.routes.push(RouteSpec {
            device: "A".into(),
            prefix: "9.0.0.0/8".into(),
            out: "A:1".into(),
        });
        let net = spec.build().unwrap();
        let a = net.topology().device_by_name("A").unwrap();
        assert_eq!(net.fib(a).lookup(&Packet::to_dst(0x0900_0001)).len(), 1);
        // Route output on the wrong device is rejected.
        spec.routes[0].out = "B:0".into();
        let err = spec.build().unwrap_err();
        assert!(err.message.contains("does not belong"));
        // Unknown interface in a link.
        let mut bad = chain_spec();
        bad.links.push(("A:9".into(), "B:1".into()));
        assert!(bad.build().is_err());
    }

    #[test]
    fn bad_direction_rejected() {
        let net = chain_spec().build().unwrap();
        let spec: AclConfigSpec = serde_json::from_str(
            r#"{"slots": [{"interface": "A:0", "direction": "sideways", "acl": ["permit all"]}]}"#,
        )
        .unwrap();
        assert!(spec.build(&net).is_err());
    }
}
