//! Identifiers for devices, interfaces and ACL attachment points.

use std::fmt;

/// A device (router), by dense index into the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interface, by dense *global* index into the topology (not per-device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

impl IfaceId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Direction of an ACL attached to an interface: filtering traffic entering
/// the device through the interface (`In`) or leaving through it (`Out`).
/// §2.1: "ACLs can be applied to both ingress and egress interfaces of a
/// router."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Ingress ACL (applied to traffic entering the device here).
    In,
    /// Egress ACL (applied to traffic leaving the device here).
    Out,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::In => Dir::Out,
            Dir::Out => Dir::In,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::In => write!(f, "in"),
            Dir::Out => write!(f, "out"),
        }
    }
}

/// An ACL attachment point: one interface in one direction. This is the `ξ`
/// of the paper wherever an ACL or a decision variable `D(ξ)` is involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    /// The interface.
    pub iface: IfaceId,
    /// The filtering direction.
    pub dir: Dir,
}

impl Slot {
    /// Ingress slot of an interface.
    pub fn ingress(iface: IfaceId) -> Slot {
        Slot {
            iface,
            dir: Dir::In,
        }
    }

    /// Egress slot of an interface.
    pub fn egress(iface: IfaceId) -> Slot {
        Slot {
            iface,
            dir: Dir::Out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::In.flip(), Dir::Out);
        assert_eq!(Dir::Out.flip(), Dir::In);
    }

    #[test]
    fn slot_constructors() {
        let i = IfaceId(3);
        assert_eq!(
            Slot::ingress(i),
            Slot {
                iface: i,
                dir: Dir::In
            }
        );
        assert_eq!(
            Slot::egress(i),
            Slot {
                iface: i,
                dir: Dir::Out
            }
        );
        assert_ne!(Slot::ingress(i), Slot::egress(i));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Slot::ingress(IfaceId(1)));
        s.insert(Slot::ingress(IfaceId(1)));
        assert_eq!(s.len(), 1);
        assert!(DeviceId(1) < DeviceId(2));
    }
}
