#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-net
//!
//! The network substrate of the Jinjing reproduction: everything the paper
//! gets "from our internal IP management system" — topology, routing state
//! and traffic — modeled explicitly.
//!
//! - [`ids`] — device / interface / ACL-slot identifiers.
//! - [`topology`] — devices, named interfaces and bidirectional links,
//!   built through [`topology::TopologyBuilder`].
//! - [`fib`] — per-device longest-prefix-match forwarding tables (with ECMP)
//!   and their compilation into exact forwarding predicates `g_{i,j}`
//!   (§4.1), one [`PacketSet`](jinjing_acl::PacketSet) per directed hop.
//! - [`network`] — the assembled [`network::Network`]: topology + FIBs +
//!   prefix announcements, scope/border computation (§3.3), per-class path
//!   enumeration (the `P` and `Y` sets of Algorithm 1) and entering-traffic
//!   extraction.
//! - [`config`] — [`config::AclConfig`]: the assignment of ACLs to
//!   interface slots (`L_Ω`), with path decision-model evaluation
//!   (`c_p`, Eq. 1) in exact set form.
//! - [`fec`] — forwarding equivalence classes (Eq. 2) derived by predicate
//!   refinement over the `g` family.

pub mod audit;
pub mod config;
pub mod fec;
pub mod fib;
pub mod ids;
pub mod network;
#[cfg(feature = "spec")]
pub mod spec;
pub mod topology;

pub use crate::config::AclConfig;
pub use crate::fec::derive_fecs;
pub use crate::fib::{Fib, FibEntry};
pub use crate::ids::{DeviceId, Dir, IfaceId, Slot};
pub use crate::network::{Network, Path, Scope};
pub use crate::topology::{Topology, TopologyBuilder};
