//! Per-device forwarding tables and their forwarding predicates.
//!
//! A [`Fib`] is a longest-prefix-match table mapping destination prefixes to
//! output interfaces (multiple outputs for one prefix = ECMP). From the FIB
//! we compile the *forwarding predicates* of §4.1: for each output interface
//! `j` of the device, the exact set of packets the device forwards out of
//! `j`. Since our routing is destination-based, these predicates carve only
//! the `dst` dimension of header space — which is exactly why FEC counts
//! stay small in practice (§9).

use crate::ids::IfaceId;
use jinjing_acl::cube::Cube;
use jinjing_acl::packet::Field;
use jinjing_acl::{IpPrefix, Packet, PacketSet};
use std::collections::HashMap;

/// One FIB entry: a destination prefix routed to one output interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: IpPrefix,
    /// Output interface.
    pub out: IfaceId,
}

/// A device's forwarding table.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    entries: Vec<FibEntry>,
}

impl Fib {
    /// Empty table (drops everything).
    pub fn new() -> Fib {
        Fib::default()
    }

    /// Add an entry. Duplicate (prefix, out) pairs are ignored; the same
    /// prefix with different outputs forms an ECMP group.
    pub fn add(&mut self, prefix: IpPrefix, out: IfaceId) {
        let e = FibEntry { prefix, out };
        if !self.entries.contains(&e) {
            self.entries.push(e);
        }
    }

    /// The raw entries.
    pub fn entries(&self) -> &[FibEntry] {
        &self.entries
    }

    /// Longest-prefix-match lookup: all output interfaces for a packet
    /// (several under ECMP; empty when the destination is unrouted).
    pub fn lookup(&self, p: &Packet) -> Vec<IfaceId> {
        let mut best_len: Option<u32> = None;
        let mut outs: Vec<IfaceId> = Vec::new();
        for e in &self.entries {
            if !e.prefix.contains(p.dip) {
                continue;
            }
            match best_len {
                Some(l) if e.prefix.len() < l => {}
                Some(l) if e.prefix.len() == l => {
                    if !outs.contains(&e.out) {
                        outs.push(e.out);
                    }
                }
                _ => {
                    best_len = Some(e.prefix.len());
                    outs.clear();
                    outs.push(e.out);
                }
            }
        }
        outs
    }

    /// Compile the forwarding predicates: for each output interface, the
    /// exact packet set the device sends there under LPM semantics.
    ///
    /// Implementation: walk prefixes from most to least specific,
    /// maintaining the set already claimed by longer prefixes; each prefix's
    /// *effective* region is its own set minus that cover, and is credited
    /// to every ECMP output of the prefix.
    pub fn forwarding_predicates(&self) -> HashMap<IfaceId, PacketSet> {
        // Group outputs per prefix.
        let mut by_prefix: HashMap<IpPrefix, Vec<IfaceId>> = HashMap::new();
        for e in &self.entries {
            by_prefix.entry(e.prefix).or_default().push(e.out);
        }
        let mut prefixes: Vec<IpPrefix> = by_prefix.keys().copied().collect();
        // Longest first; ties ordered deterministically by address.
        prefixes.sort_by(|a, b| b.len().cmp(&a.len()).then(a.addr().cmp(&b.addr())));
        let mut claimed = PacketSet::empty();
        let mut preds: HashMap<IfaceId, PacketSet> = HashMap::new();
        for pfx in prefixes {
            let full = prefix_set(&pfx);
            let effective = full.subtract(&claimed);
            claimed = claimed.union(&full);
            if effective.is_empty() {
                continue;
            }
            for out in &by_prefix[&pfx] {
                let entry = preds.entry(*out).or_insert_with(PacketSet::empty);
                *entry = entry.union(&effective);
            }
        }
        preds
    }
}

/// The packet set whose destination lies in `prefix` (all other fields
/// unconstrained).
pub fn prefix_set(prefix: &IpPrefix) -> PacketSet {
    PacketSet::from_cube(Cube::full().with(Field::DstIp, prefix.interval()))
}

/// The packet set whose *source* lies in `prefix`.
pub fn src_prefix_set(prefix: &IpPrefix) -> PacketSet {
    PacketSet::from_cube(Cube::full().with(Field::SrcIp, prefix.interval()))
}

/// Parse helper for tests and generators: `"1.0.0.0/8"` → [`IpPrefix`].
pub fn pfx(s: &str) -> IpPrefix {
    jinjing_acl::parse::parse_prefix(s).expect("invalid prefix literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpkt(s: &str) -> Packet {
        Packet::to_dst(jinjing_acl::packet::parse_ip(s).unwrap())
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.1.0.0/16"), IfaceId(2));
        assert_eq!(f.lookup(&dpkt("10.1.2.3")), vec![IfaceId(2)]);
        assert_eq!(f.lookup(&dpkt("10.2.2.3")), vec![IfaceId(1)]);
        assert!(f.lookup(&dpkt("11.0.0.1")).is_empty());
    }

    #[test]
    fn ecmp_returns_all_equal_length_matches() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.0.0.0/8"), IfaceId(2));
        let mut outs = f.lookup(&dpkt("10.1.2.3"));
        outs.sort();
        assert_eq!(outs, vec![IfaceId(1), IfaceId(2)]);
    }

    #[test]
    fn duplicate_entries_deduplicated() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        assert_eq!(f.entries().len(), 1);
    }

    #[test]
    fn predicates_respect_lpm_carving() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.1.0.0/16"), IfaceId(2));
        let preds = f.forwarding_predicates();
        let g1 = &preds[&IfaceId(1)];
        let g2 = &preds[&IfaceId(2)];
        assert!(g2.contains(&dpkt("10.1.9.9")));
        assert!(!g1.contains(&dpkt("10.1.9.9"))); // stolen by the /16
        assert!(g1.contains(&dpkt("10.2.9.9")));
        assert!(!g2.contains(&dpkt("10.2.9.9")));
        assert!(!g1.contains(&dpkt("11.0.0.1")));
    }

    #[test]
    fn predicates_agree_with_lookup_on_samples() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.1.0.0/16"), IfaceId(2));
        f.add(pfx("10.1.2.0/24"), IfaceId(1));
        f.add(pfx("0.0.0.0/0"), IfaceId(3));
        let preds = f.forwarding_predicates();
        for s in [
            "10.1.2.3",
            "10.1.9.9",
            "10.9.9.9",
            "11.0.0.1",
            "192.168.1.1",
        ] {
            let p = dpkt(s);
            let outs = f.lookup(&p);
            for (iface, set) in &preds {
                assert_eq!(
                    set.contains(&p),
                    outs.contains(iface),
                    "dst {s} iface {iface:?}"
                );
            }
        }
    }

    #[test]
    fn ecmp_predicates_overlap() {
        let mut f = Fib::new();
        f.add(pfx("10.0.0.0/8"), IfaceId(1));
        f.add(pfx("10.0.0.0/8"), IfaceId(2));
        let preds = f.forwarding_predicates();
        assert!(preds[&IfaceId(1)].same_set(&preds[&IfaceId(2)]));
    }

    #[test]
    fn prefix_set_constrains_only_dst() {
        let s = prefix_set(&pfx("1.0.0.0/8"));
        assert!(s.contains(&Packet::new(0xffff_ffff, 0x0101_0101, 9, 9, 9)));
        assert!(!s.contains(&Packet::new(0x0101_0101, 0xffff_ffff, 9, 9, 9)));
        let s2 = src_prefix_set(&pfx("1.0.0.0/8"));
        assert!(s2.contains(&Packet::new(0x0101_0101, 0xffff_ffff, 9, 9, 9)));
    }
}
