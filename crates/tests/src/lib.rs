#![forbid(unsafe_code)]

//! Umbrella package for the cross-crate integration tests living in the
//! repository-level `tests/` directory. See that directory for the suites:
//! paper worked examples (`running_example`), synthetic-WAN end-to-end runs
//! (`wan_integration`), and property-based suites over the set algebra, ACL
//! semantics, the SAT solver, the LAI language and the three primitives.
