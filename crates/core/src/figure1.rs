//! The paper's running example: the four-router subnet of Figure 1.
//!
//! Topology (external interfaces marked `ext`):
//!
//! ```text
//!   ext ── A1   A2 ──── B1  B2
//!          A3 ─┐│        │
//!          A4 ┐││        │
//!             │││        │
//!             ││└─ C1 C2 ┘   C3 ── ext
//!             ││   C4 ─┐
//!             │└──── (A3–C1)
//!             └ D1  D2 ┘     D3 ── ext
//! ```
//!
//! Links: A2–B1, B2–C2, A3–C1, A4–D1, C4–D2. Traffic *n* (1 ≤ n ≤ 7) is the
//! destination prefix `n.0.0.0/8`, announced behind the external exits
//! (1–6 at D3, and 1/4/7 additionally visible at C3, reproducing the
//! figure's edge labels). The hand-crafted FIBs make the forwarding
//! equivalence classes come out exactly as §4.1 lists them:
//! `[1] = {1}`, `[2] = {2,3}`, `[4] = {4}`, `[5] = {5,6}`, `[7] = {7}`.
//!
//! ACLs (all ingress, default permit):
//! - `A1`: `deny dst 6.0.0.0/8`
//! - `C1`: `deny dst 7.0.0.0/8`
//! - `D2`: `deny dst 1.0.0.0/8, deny dst 2.0.0.0/8`

use jinjing_acl::{AclBuilder, PacketSet};
use jinjing_net::fib::{pfx, prefix_set};
use jinjing_net::{AclConfig, IfaceId, Network, Scope, Slot, TopologyBuilder};
use std::collections::HashMap;

/// The Figure 1 network plus its original ACL configuration and convenient
/// handles to every interface.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The network (topology + FIBs + announcements).
    pub net: Network,
    /// The original `L_Ω` of the example.
    pub config: AclConfig,
    /// Interface handles by the paper's names (`"A1"`, `"C4"`, …).
    pub ifaces: HashMap<String, IfaceId>,
}

impl Figure1 {
    /// Build the example.
    pub fn new() -> Figure1 {
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let b = tb.device("B");
        let c = tb.device("C");
        let d = tb.device("D");
        let a1 = tb.iface(a, "1");
        let a2 = tb.iface(a, "2");
        let a3 = tb.iface(a, "3");
        let a4 = tb.iface(a, "4");
        let b1 = tb.iface(b, "1");
        let b2 = tb.iface(b, "2");
        let c1 = tb.iface(c, "1");
        let c2 = tb.iface(c, "2");
        let c3 = tb.iface(c, "3");
        let c4 = tb.iface(c, "4");
        let d1 = tb.iface(d, "1");
        let d2 = tb.iface(d, "2");
        let d3 = tb.iface(d, "3");
        tb.link(a2, b1);
        tb.link(b2, c2);
        tb.link(a3, c1);
        tb.link(a4, d1);
        tb.link(c4, d2);
        let mut net = Network::new(tb.build());

        // Hand-crafted FIBs reproducing the figure's per-edge traffic labels.
        let p = |n: u32| pfx(&format!("{n}.0.0.0/8"));
        // A: 1,4,5,6 toward D only; 2,3 ECMP toward D and via B; 7 via C.
        for n in 1..=6 {
            net.fib_mut(a).add(p(n), a4);
        }
        net.fib_mut(a).add(p(2), a2);
        net.fib_mut(a).add(p(3), a2);
        net.fib_mut(a).add(p(7), a3);
        // Background prefix 8/8 travels A3→C1→C4→D2→D3: it is what makes
        // ⟨A1,A3,C1,C4,D2,D3⟩ a real path of the subnet (the third A1→D3
        // path of §3.3) without touching traffic 1-7's classes.
        net.fib_mut(a).add(p(8), a3);
        // B relays 2,3 toward C.
        net.fib_mut(b).add(p(2), b2);
        net.fib_mut(b).add(p(3), b2);
        // C: 1,2,3,8 toward D via C4; 4 and 7 out of C3. (The 1→C4 and
        // 4→C3 entries are what distinguish FECs [1] and [4] from
        // [5] = {5,6}.)
        net.fib_mut(c).add(p(1), c4);
        net.fib_mut(c).add(p(2), c4);
        net.fib_mut(c).add(p(3), c4);
        net.fib_mut(c).add(p(8), c4);
        net.fib_mut(c).add(p(4), c3);
        net.fib_mut(c).add(p(7), c3);
        // D: everything 1-6 plus 8 exits at D3.
        for n in 1..=6 {
            net.fib_mut(d).add(p(n), d3);
        }
        net.fib_mut(d).add(p(8), d3);
        // Announcements (for entering-traffic extraction).
        for n in 1..=6 {
            net.announce(p(n), d3);
        }
        net.announce(p(8), d3);
        net.announce(p(7), c3);
        // Directional traffic matrix: everything enters at A1 (the figure's
        // arrows all point left-to-right); C3 and D3 are pure exits.
        let entering = (1..=8).fold(PacketSet::empty(), |acc, n| acc.union(&prefix_set(&p(n))));
        net.set_entering(a1, entering);

        // Original ACLs (Figure 1).
        let mut config = AclConfig::new();
        config.set(
            Slot::ingress(a1),
            AclBuilder::default_permit().deny_dst("6.0.0.0/8").build(),
        );
        config.set(
            Slot::ingress(c1),
            AclBuilder::default_permit().deny_dst("7.0.0.0/8").build(),
        );
        config.set(
            Slot::ingress(d2),
            AclBuilder::default_permit()
                .deny_dst("1.0.0.0/8")
                .deny_dst("2.0.0.0/8")
                .build(),
        );

        let names = [
            ("A1", a1),
            ("A2", a2),
            ("A3", a3),
            ("A4", a4),
            ("B1", b1),
            ("B2", b2),
            ("C1", c1),
            ("C2", c2),
            ("C3", c3),
            ("C4", c4),
            ("D1", d1),
            ("D2", d2),
            ("D3", d3),
        ];
        let ifaces = names.into_iter().map(|(n, i)| (n.to_string(), i)).collect();
        Figure1 {
            net,
            config,
            ifaces,
        }
    }

    /// Interface handle by the paper's name.
    pub fn iface(&self, name: &str) -> IfaceId {
        self.ifaces[name]
    }

    /// Ingress slot by the paper's interface name.
    pub fn slot(&self, name: &str) -> Slot {
        Slot::ingress(self.iface(name))
    }

    /// The whole-subnet scope (the dashed circle of Figure 1).
    pub fn scope(&self) -> Scope {
        Scope::whole(self.net.topology())
    }

    /// "Traffic n" as an exact packet set.
    pub fn traffic(&self, n: u32) -> PacketSet {
        prefix_set(&pfx(&format!("{n}.0.0.0/8")))
    }

    /// The §3.2 update: clean up C and D, moving their deny rules to A.
    /// Returns the post-update configuration `L'_Ω`.
    pub fn bad_update(&self) -> AclConfig {
        let mut after = self.config.clone();
        after.set(self.slot("D2"), jinjing_acl::Acl::permit_all());
        after.set(self.slot("C1"), jinjing_acl::Acl::permit_all());
        after.set(
            self.slot("A1"),
            AclBuilder::default_permit()
                .deny_dst("1.0.0.0/8")
                .deny_dst("2.0.0.0/8")
                .deny_dst("6.0.0.0/8")
                .build(),
        );
        // A3's replacement filters traffic *leaving* A through A3 (the
        // paths ⟨A1, A3, …⟩ traverse A3 outbound), so it is an egress ACL.
        after.set(
            Slot::egress(self.iface("A3")),
            AclBuilder::default_permit().deny_dst("7.0.0.0/8").build(),
        );
        after
    }
}

impl Default for Figure1 {
    fn default() -> Figure1 {
        Figure1::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::atoms::RefineLimits;
    use jinjing_acl::Packet;
    use jinjing_net::derive_fecs;

    #[test]
    fn fec_structure_matches_section_4_1() {
        let f = Figure1::new();
        let universe: PacketSet = (1..=7)
            .map(|n| f.traffic(n))
            .fold(PacketSet::empty(), |a, b| a.union(&b));
        let fecs = derive_fecs(&f.net, &f.scope(), &universe, RefineLimits::default()).unwrap();
        assert_eq!(fecs.len(), 5, "exactly five FECs");
        let class_of = |n: u32| {
            let p = Packet::to_dst(n << 24 | 1);
            fecs.iter().position(|c| c.set.contains(&p)).unwrap()
        };
        assert_eq!(class_of(2), class_of(3));
        assert_eq!(class_of(5), class_of(6));
        let distinct: std::collections::HashSet<usize> =
            [1, 2, 4, 5, 7].into_iter().map(class_of).collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn paths_match_section_3_3() {
        let f = Figure1::new();
        let scope = f.scope();
        let topo = f.net.topology();
        // Traffic 2: exactly p0 and p2 from A1.
        let paths = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(2));
        let shown: Vec<String> = paths.iter().map(|p| p.display(topo)).collect();
        assert_eq!(paths.len(), 2, "{shown:?}");
        assert!(shown.contains(&"⟨A:1, A:4, D:1, D:3⟩".to_string()));
        assert!(shown.contains(&"⟨A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3⟩".to_string()));
        // Traffic 1: only p0.
        let paths1 = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(1));
        assert_eq!(paths1.len(), 1);
        assert_eq!(paths1[0].display(topo), "⟨A:1, A:4, D:1, D:3⟩");
        // Traffic 7: the A3→C1→C3 path.
        let paths7 = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(7));
        assert_eq!(paths7.len(), 1);
        assert_eq!(paths7[0].display(topo), "⟨A:1, A:3, C:1, C:3⟩");
        // Topologically, there are three A1→D3 paths (§3.3): visible when
        // enumerating for the full universe.
        let all = f
            .net
            .paths_for_class(&scope, f.iface("A1"), &PacketSet::full());
        let to_d3: Vec<&jinjing_net::Path> =
            all.iter().filter(|p| p.egress() == f.iface("D3")).collect();
        assert_eq!(to_d3.len(), 3);
    }

    #[test]
    fn original_reachability_facts() {
        let f = Figure1::new();
        let scope = f.scope();
        // Traffic 1 and 2 exit at D3 via p0 (permitted end to end).
        for n in [1u32, 2] {
            let paths = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(n));
            let p0 = paths
                .iter()
                .find(|p| p.slots.len() == 4)
                .expect("direct path via D");
            let pkt = Packet::to_dst(n << 24 | 5);
            assert!(f.config.path_permits(p0, &pkt), "traffic {n} on p0");
        }
        // Traffic 6 is denied at A1; traffic 7 at C1.
        let p6 = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(6));
        assert!(!f.config.path_permits(&p6[0], &Packet::to_dst(6 << 24)));
        let p7 = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(7));
        assert!(!f.config.path_permits(&p7[0], &Packet::to_dst(7 << 24)));
    }

    #[test]
    fn bad_update_changes_p0_for_traffic_1_and_2() {
        let f = Figure1::new();
        let after = f.bad_update();
        let scope = f.scope();
        for n in [1u32, 2] {
            let paths = f.net.paths_for_class(&scope, f.iface("A1"), &f.traffic(n));
            let p0 = paths.iter().find(|p| p.slots.len() == 4).unwrap();
            let pkt = Packet::to_dst(n << 24 | 5);
            assert!(f.config.path_permits(p0, &pkt));
            assert!(!after.path_permits(p0, &pkt), "update blocks traffic {n}");
        }
    }
}
