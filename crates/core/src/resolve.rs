//! Binding an LAI program to a concrete network.
//!
//! Pattern semantics:
//! - `scope` patterns select *devices* (interface parts are ignored for
//!   scope membership, matching the paper's "A:*" usage).
//! - `allow` patterns select ACL slots. Without a `-in`/`-out` suffix both
//!   directions are allowed (the §4.2 fixing example places a deny on the
//!   egress side of A2 under `allow A:*`).
//! - `modify` targets select slots; without a suffix the *ingress* slot is
//!   meant (ACLs in all the paper's figures are ingress ACLs).
//! - `control` endpoints select interfaces (direction ignored); they are
//!   matched against path ingress/egress border interfaces.

use crate::control::{header_region, ResolvedControl};
use crate::task::Task;
use jinjing_lai::{Command, DirSpec, IfaceSel, Program, SlotPattern};
use jinjing_net::{AclConfig, DeviceId, IfaceId, Network, Scope, Slot};
use std::collections::HashSet;
use std::fmt;

/// A resolution failure (unknown device/interface, empty matches, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// Human-readable description.
    pub message: String,
}

impl ResolveError {
    fn new(message: impl Into<String>) -> ResolveError {
        ResolveError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ResolveError {}

fn resolve_device(net: &Network, name: &str) -> Result<DeviceId, ResolveError> {
    net.topology()
        .device_by_name(name)
        .ok_or_else(|| ResolveError::new(format!("unknown device {name:?}")))
}

fn resolve_ifaces(net: &Network, pat: &SlotPattern) -> Result<Vec<IfaceId>, ResolveError> {
    let dev = resolve_device(net, &pat.device)?;
    match &pat.iface {
        IfaceSel::Star => Ok(net.topology().device_ifaces(dev).to_vec()),
        IfaceSel::Named(name) => net
            .topology()
            .iface_by_name(&pat.device, name)
            .map(|i| vec![i])
            .ok_or_else(|| ResolveError::new(format!("unknown interface {}:{}", pat.device, name))),
    }
}

/// Resolve a slot pattern. `default_both` controls what a missing direction
/// suffix means: both directions (allow) or ingress only (modify).
fn resolve_slots(
    net: &Network,
    pat: &SlotPattern,
    default_both: bool,
) -> Result<Vec<Slot>, ResolveError> {
    let ifaces = resolve_ifaces(net, pat)?;
    let mut out = Vec::new();
    for i in ifaces {
        match pat.dir {
            Some(DirSpec::In) => out.push(Slot::ingress(i)),
            Some(DirSpec::Out) => out.push(Slot::egress(i)),
            None => {
                out.push(Slot::ingress(i));
                if default_both {
                    out.push(Slot::egress(i));
                }
            }
        }
    }
    Ok(out)
}

/// Resolve a validated program against a network and its current ACL
/// configuration.
pub fn resolve(
    net: &Network,
    program: &Program,
    current: &AclConfig,
) -> Result<Task, ResolveError> {
    let command: Command = program
        .command
        .ok_or_else(|| ResolveError::new("program has no command"))?;
    // Scope: devices named by the scope patterns.
    let mut devices: HashSet<DeviceId> = HashSet::new();
    for pat in &program.scope {
        devices.insert(resolve_device(net, &pat.device)?);
    }
    let scope = Scope::of(devices);

    // Allow: slots (both directions by default).
    let mut allow: Vec<Slot> = Vec::new();
    for pat in &program.allow {
        for s in resolve_slots(net, pat, true)? {
            if !allow.contains(&s) {
                allow.push(s);
            }
        }
    }
    allow.sort();

    // Modifies: apply to a copy of the current configuration.
    let before = current.clone();
    let mut after = current.clone();
    let mut modified = Vec::new();
    for m in &program.modifies {
        let acl = program
            .acl_def(&m.acl)
            .ok_or_else(|| ResolveError::new(format!("undefined acl {:?}", m.acl)))?;
        for slot in resolve_slots(net, &m.target, false)? {
            after.set(slot, acl.clone());
            if !modified.contains(&slot) {
                modified.push(slot);
            }
        }
    }

    // Controls: endpoints become interface sets.
    let mut controls = Vec::new();
    for c in &program.controls {
        let mut from = HashSet::new();
        for pat in &c.from {
            from.extend(resolve_ifaces(net, pat)?);
        }
        let mut to = HashSet::new();
        for pat in &c.to {
            to.extend(resolve_ifaces(net, pat)?);
        }
        controls.push(ResolvedControl {
            from,
            to,
            verb: c.verb,
            region: header_region(&c.header),
        });
    }

    Ok(Task {
        scope,
        allow,
        before,
        after,
        modified,
        controls,
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;
    use jinjing_lai::{parse_program, validate};

    fn resolve_src(f: &Figure1, src: &str) -> Result<Task, ResolveError> {
        let prog = validate(parse_program(src).unwrap()).unwrap();
        resolve(&f.net, &prog, &f.config)
    }

    #[test]
    fn running_example_resolves() {
        let f = Figure1::new();
        let src = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
}
acl A3' { deny dst 7.0.0.0/8 }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
check
"#;
        let task = resolve_src(&f, src).unwrap();
        assert_eq!(task.command, Command::Check);
        assert_eq!(task.scope.len(), 4);
        // A has 4 ifaces, B has 2 → 6 ifaces × 2 dirs.
        assert_eq!(task.allow.len(), 12);
        assert_eq!(task.modified.len(), 4);
        // The after config matches bad_update semantically.
        let expected = f.bad_update();
        let slots = [
            f.slot("A1"),
            jinjing_net::Slot::egress(f.iface("A3")),
            f.slot("C1"),
            f.slot("D2"),
        ];
        for slot in slots {
            assert!(task
                .after
                .get(slot)
                .unwrap()
                .equivalent(expected.get(slot).unwrap()));
        }
        // before untouched.
        assert_eq!(task.before.get(f.slot("D2")), f.config.get(f.slot("D2")));
    }

    #[test]
    fn modify_without_dir_targets_ingress() {
        let f = Figure1::new();
        let task = resolve_src(
            &f,
            "acl P { permit all }\nscope D:*\nallow D:*\nmodify D:2 to P\ncheck\n",
        )
        .unwrap();
        assert_eq!(task.modified, vec![f.slot("D2")]);
    }

    #[test]
    fn allow_with_dir_suffix_restricts() {
        let f = Figure1::new();
        let task = resolve_src(
            &f,
            "acl P { permit all }\nscope B:*\nallow B:*-in\nmodify B:1 to P\ncheck\n",
        )
        .unwrap();
        assert_eq!(task.allow.len(), 2); // B1-in, B2-in only
        assert!(task.allow.iter().all(|s| s.dir == jinjing_net::Dir::In));
    }

    #[test]
    fn controls_resolve_endpoints() {
        let f = Figure1::new();
        let task = resolve_src(
            &f,
            "scope A:*, C:*, D:*\nallow D:*\ncontrol A:1 -> C:3, D:3 isolate dst 1.2.0.0/16\ngenerate\n",
        )
        .unwrap();
        assert_eq!(task.controls.len(), 1);
        let c = &task.controls[0];
        assert!(c.from.contains(&f.iface("A1")));
        assert!(c.to.contains(&f.iface("C3")));
        assert!(c.to.contains(&f.iface("D3")));
        assert_eq!(c.to.len(), 2);
    }

    #[test]
    fn unknown_names_error() {
        let f = Figure1::new();
        for src in [
            "scope Z:*\nallow Z:*\ngenerate\n",
            "scope A:*\nallow A:9\ngenerate\n",
        ] {
            let prog = validate(parse_program(src).unwrap()).unwrap();
            let err = resolve(&f.net, &prog, &f.config).unwrap_err();
            assert!(err.message.contains("unknown"), "{err}");
        }
    }
}
