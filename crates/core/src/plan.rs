//! Safe update sequencing: synthesize certified rollout plans.
//!
//! Given a base configuration, a target configuration, and the intent
//! (scope + resolved controls), this module decomposes the diff into
//! per-device steps and searches for an ordering such that **every
//! intermediate network state** satisfies the intent. Each candidate
//! prefix state is verified through a persistent
//! [`CheckSession`](crate::incr::CheckSession) probe — dirty-set pruning
//! (Theorem 4.1) plus warm solvers make the N intermediate checks cheap —
//! and violation witnesses are generalized into counterexamples that
//! prune the ordering search CEGIS-style.
//!
//! ## Step decomposition
//!
//! Every slot whose effective ACL differs between base and target is an
//! *edit*; edits are grouped by owning device (a device's slots commit
//! atomically in one management transaction) and the groups, sorted by
//! device name, are the plan's *steps*. Each step carries the union of
//! its slots' differential covers — the exact packet region whose
//! decisions the step can influence (Definition 4.1).
//!
//! ## Safety is a property of the applied *set*
//!
//! The network state after applying steps `S` (in any order) depends only
//! on the set `S`, never on the order — distinct slots commute trivially.
//! A prefix set is *safe* when `check(base, apply(S), controls)` is
//! consistent. The ordering search therefore explores monotone chains
//! `∅ ⊂ S₁ ⊂ … ⊂ Full` in the subset lattice, memoizing safety verdicts
//! per set; the memo is target-independent, so it is soundly shared with
//! the infeasibility-core sub-searches.
//!
//! ## CEGIS witness generalization
//!
//! When `apply(S)` violates the intent the checker returns a witness
//! packet `p`. Let `affect(p) = {i : p ∈ cover(step i)}`. For any set `X`
//! with `X ∩ affect(p) = S ∩ affect(p)`, packet `p` meets identical rule
//! subsequences at every slot (Theorem 4.1 applied per step), so `X` is
//! violated by the same witness. Each witness is stored as an
//! `(affect-mask, required-bits)` pair and prunes candidate sets without
//! any solver work.
//!
//! ## Commuting waves
//!
//! Steps whose covers are pairwise disjoint within a wave are provably
//! order-independent: every packet lies in at most one wave member's
//! cover, so its decision in any partial interleaving equals its decision
//! in either the pre-wave or post-wave state — both of which the chain
//! probes certified. Consecutive chain steps with pairwise-disjoint
//! covers are batched into waves, and one [`WaveCertificate`] per wave
//! records the certified cumulative state at the wave boundary.

use crate::check::{CheckConfig, CheckOutcome};
use crate::control::ResolvedControl;
use crate::incr::{CheckSession, IncrConfig};
use jinjing_acl::atoms::ClassExplosion;
use jinjing_acl::diff::AclDiff;
use jinjing_acl::{Acl, PacketSet};
use jinjing_net::{AclConfig, Network, Scope, Slot};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Hard cap on plan steps: prefix sets are bitmasks in a `u32` and the
/// subset lattice is explored explicitly.
pub const MAX_PLAN_STEPS: usize = 16;

/// Planner tunables.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Maximum number of waves in a feasible plan (`0` = unlimited). A
    /// tighter budget can render an otherwise-orderable update infeasible;
    /// the infeasibility core is then computed under the same budget.
    pub max_waves: usize,
    /// Maximum number of per-device steps the planner accepts (capped at
    /// [`MAX_PLAN_STEPS`]).
    pub max_steps: usize,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            max_waves: 0,
            max_steps: MAX_PLAN_STEPS,
        }
    }
}

/// One per-device rollout step: every changed slot on the device, applied
/// atomically.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Device name (steps are sorted by it).
    pub device: String,
    /// Slot edits: `Some(acl)` installs, `None` clears. Sorted by slot.
    pub edits: Vec<(Slot, Option<Acl>)>,
    /// Union of the step's per-slot differential covers: the packet
    /// region whose decisions this step can influence.
    pub cover: PacketSet,
}

/// Certificate for one wave boundary: the cumulative state after the
/// wave was verified consistent, and wave-internal order-independence
/// holds structurally.
#[derive(Debug, Clone)]
pub struct WaveCertificate {
    /// `true` — wave members have pairwise-disjoint covers, so every
    /// interleaving passes through certified-equivalent states. Recorded
    /// explicitly so the JSON artifact is self-describing.
    pub commuting: bool,
    /// FEC classes examined by the boundary-state probe.
    pub fec_count: usize,
    /// `(class, path)` pairs encoded by the boundary-state probe.
    pub paths_checked: usize,
    /// Dirty `(class, path)` pairs the probe actually solved.
    pub dirty_pairs: usize,
    /// Devices applied so far (cumulative, sorted).
    pub state: Vec<String>,
}

/// Search-effort accounting.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Candidate prefix sets evaluated (probes + prunes).
    pub prefix_attempts: usize,
    /// Prefix sets actually probed through the session.
    pub prefix_checks: usize,
    /// Candidates pruned by a generalized violation witness.
    pub pruned_witness: usize,
    /// Candidates answered by the set-safety memo.
    pub pruned_memo: usize,
    /// Total dirty `(class, path)` pairs solved across all probes.
    pub dirty_pairs: usize,
    /// Cold ceiling: `prefix_attempts × total_pairs` — the pair workload
    /// if every candidate evaluation ran a cold, non-differential-session
    /// check over the full class/path product.
    pub pairs_ceiling: usize,
}

/// Outcome of the ordering search.
#[derive(Debug, Clone)]
pub enum PlanOutcome {
    /// A safe ordering exists.
    Feasible {
        /// Waves of step indices; steps within a wave commute.
        waves: Vec<Vec<usize>>,
        /// One certificate per wave boundary (`certificates.len() ==
        /// waves.len()`).
        certificates: Vec<WaveCertificate>,
    },
    /// No safe ordering exists (within the wave budget).
    Infeasible {
        /// Deletion-minimal set of step indices that is still infeasible
        /// on its own: removing any one member admits a safe ordering.
        core: Vec<usize>,
    },
}

/// A certified rollout plan (or its refutation).
#[derive(Debug, Clone)]
pub struct RolloutPlan {
    /// Per-device steps, sorted by device name.
    pub steps: Vec<PlanStep>,
    /// Feasible waves + certificates, or a minimal infeasibility core.
    pub outcome: PlanOutcome,
    /// Search-effort accounting.
    pub stats: PlanStats,
}

impl RolloutPlan {
    /// `true` when a safe ordering was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self.outcome, PlanOutcome::Feasible { .. })
    }

    /// One-line human verdict.
    pub fn verdict(&self) -> String {
        match &self.outcome {
            PlanOutcome::Feasible { waves, .. } => format!(
                "plan: {} steps in {} waves",
                self.steps.len(),
                waves.len()
            ),
            PlanOutcome::Infeasible { core } => {
                let names: Vec<&str> =
                    core.iter().map(|&i| self.steps[i].device.as_str()).collect();
                format!("plan: infeasible (core {})", names.join(", "))
            }
        }
    }
}

/// Planner failure (distinct from infeasibility, which is a result).
#[derive(Debug)]
pub enum PlanError {
    /// FEC refinement exceeded its class budget.
    Classes(ClassExplosion),
    /// The diff decomposes into more steps than the planner accepts.
    TooManySteps {
        /// Steps in the decomposition.
        count: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// A prefix-state probe's shard fan-out failed (delegated solving).
    Shard(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Classes(e) => write!(f, "{e}"),
            PlanError::TooManySteps { count, max } => {
                write!(f, "plan has {count} per-device steps, max is {max}")
            }
            PlanError::Shard(msg) => write!(f, "shard fan-out failed: {msg}"),
        }
    }
}

impl From<ClassExplosion> for PlanError {
    fn from(e: ClassExplosion) -> PlanError {
        PlanError::Classes(e)
    }
}

impl From<crate::check::CheckError> for PlanError {
    fn from(e: crate::check::CheckError) -> PlanError {
        match e {
            crate::check::CheckError::Classes(c) => PlanError::Classes(c),
            crate::check::CheckError::Shard(msg) => PlanError::Shard(msg),
        }
    }
}

/// Decompose `base → target` into per-device steps, sorted by device
/// name. Slots whose effective ACLs (missing = permit-all) are equal are
/// not edits.
pub fn decompose(net: &Network, base: &AclConfig, target: &AclConfig) -> Vec<PlanStep> {
    let topo = net.topology();
    let mut slots: Vec<Slot> = base.slots();
    for s in target.slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    slots.sort();
    let mut by_device: BTreeMap<String, Vec<(Slot, Option<Acl>)>> = BTreeMap::new();
    let mut covers: BTreeMap<String, PacketSet> = BTreeMap::new();
    for slot in slots {
        let b = base.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let a = target.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        if b == a {
            continue;
        }
        let device = topo.device(topo.owner(slot.iface)).name.clone();
        let diff = AclDiff::compute(&b, &a);
        let edit = (slot, target.get(slot).cloned());
        by_device.entry(device.clone()).or_default().push(edit);
        let entry = covers.entry(device).or_insert_with(PacketSet::empty);
        *entry = entry.union(&diff.cover);
    }
    by_device
        .into_iter()
        .map(|(device, edits)| PlanStep {
            cover: covers.remove(&device).expect("cover recorded per device"),
            device,
            edits,
        })
        .collect()
}

/// The configuration reached by applying the steps at `indices` (order
/// irrelevant: steps touch disjoint slots).
pub fn apply_steps(base: &AclConfig, steps: &[PlanStep], indices: &[usize]) -> AclConfig {
    let mut out = base.clone();
    for &i in indices {
        for (slot, acl) in &steps[i].edits {
            match acl {
                Some(a) => out.set(*slot, a.clone()),
                None => {
                    out.clear(*slot);
                }
            }
        }
    }
    out
}

fn apply_mask(base: &AclConfig, steps: &[PlanStep], mask: u32) -> AclConfig {
    let indices: Vec<usize> = (0..steps.len()).filter(|&i| mask & (1 << i) != 0).collect();
    apply_steps(base, steps, &indices)
}

/// Probe-report fields retained per certified prefix set, for wave
/// certificates.
#[derive(Clone, Copy)]
struct CertInfo {
    fec_count: usize,
    paths_checked: usize,
    dirty_pairs: usize,
}

struct Search<'a, 'n> {
    session: &'a CheckSession<'n>,
    steps: &'a [PlanStep],
    base: &'a AclConfig,
    max_waves: usize,
    /// Safe(S) verdicts; target-independent, shared across sub-searches.
    memo: HashMap<u32, bool>,
    /// Probe reports for sets certified safe.
    certs: HashMap<u32, CertInfo>,
    /// Generalized witnesses: `S` is violated when `S & mask == bits`.
    witnesses: Vec<(u32, u32)>,
    /// Sets from which no completion exists, keyed
    /// `(universe << 32) | applied` — a dead verdict is only meaningful
    /// for the universe it was computed against (the core sub-searches
    /// run over smaller universes). Sound only without a wave budget
    /// (reachability is then independent of the wave partition), so it
    /// is consulted and populated only when `max_waves == 0`.
    dead: HashSet<u64>,
    stats: PlanStats,
}

impl Search<'_, '_> {
    /// Is the prefix set `mask` safe? The empty set is the status quo the
    /// plan starts from, never a state the plan creates, and is exempt.
    fn safe(&mut self, mask: u32) -> Result<bool, crate::check::CheckError> {
        self.stats.prefix_attempts += 1;
        if mask == 0 {
            return Ok(true);
        }
        if let Some(&v) = self.memo.get(&mask) {
            self.stats.pruned_memo += 1;
            return Ok(v);
        }
        for &(wmask, wbits) in &self.witnesses {
            if mask & wmask == wbits {
                self.stats.pruned_witness += 1;
                self.memo.insert(mask, false);
                return Ok(false);
            }
        }
        let state = apply_mask(self.base, self.steps, mask);
        let (report, incr) = self.session.probe(&state)?;
        self.stats.prefix_checks += 1;
        self.stats.dirty_pairs += incr.dirty_pairs;
        match report.outcome {
            CheckOutcome::Consistent => {
                self.certs.insert(
                    mask,
                    CertInfo {
                        fec_count: report.fec_count,
                        paths_checked: report.paths_checked,
                        dirty_pairs: incr.dirty_pairs,
                    },
                );
                self.memo.insert(mask, true);
                Ok(true)
            }
            CheckOutcome::Inconsistent(v) => {
                let mut affect = 0u32;
                for (i, s) in self.steps.iter().enumerate() {
                    if s.cover.contains(&v.packet) {
                        affect |= 1 << i;
                    }
                }
                self.witnesses.push((affect, mask & affect));
                self.memo.insert(mask, false);
                Ok(false)
            }
        }
    }

    /// Depth-first search for a safe monotone chain `applied → universe`,
    /// maintaining the wave partition. Steps whose covers are disjoint
    /// from the whole current wave are tried first (they widen the wave);
    /// other steps open a new wave, which the wave budget may forbid.
    fn dfs(
        &mut self,
        universe: u32,
        applied: u32,
        waves: &mut Vec<Vec<usize>>,
    ) -> Result<bool, crate::check::CheckError> {
        if applied == universe {
            return Ok(true);
        }
        let dead_key = (universe as u64) << 32 | applied as u64;
        if self.max_waves == 0 && self.dead.contains(&dead_key) {
            return Ok(false);
        }
        let mut extenders: Vec<usize> = Vec::new();
        let mut openers: Vec<usize> = Vec::new();
        for i in 0..self.steps.len() {
            let bit = 1u32 << i;
            if universe & bit == 0 || applied & bit != 0 {
                continue;
            }
            let joins_wave = waves.last().is_some_and(|w| {
                w.iter()
                    .all(|&j| self.steps[i].cover.intersect(&self.steps[j].cover).is_empty())
            });
            if joins_wave {
                extenders.push(i);
            } else {
                openers.push(i);
            }
        }
        let wave_budget_left = self.max_waves == 0 || waves.len() < self.max_waves;
        for (extends, i) in extenders
            .iter()
            .map(|&i| (true, i))
            .chain(openers.iter().map(|&i| (false, i)))
        {
            if !extends && !wave_budget_left {
                continue;
            }
            let next = applied | (1 << i);
            if !self.safe(next)? {
                continue;
            }
            if extends {
                waves.last_mut().expect("extender implies open wave").push(i);
            } else {
                waves.push(vec![i]);
            }
            if self.dfs(universe, next, waves)? {
                return Ok(true);
            }
            if extends {
                waves.last_mut().expect("wave still open").pop();
            } else {
                waves.pop();
            }
        }
        if self.max_waves == 0 {
            self.dead.insert(dead_key);
        }
        Ok(false)
    }

    /// Can the steps in `universe` be ordered safely (within the wave
    /// budget)? Used by the infeasibility-core deletion filter; shares
    /// the safety memo and witness store with the main search.
    fn feasible(&mut self, universe: u32) -> Result<bool, crate::check::CheckError> {
        let mut waves = Vec::new();
        self.dfs(universe, 0, &mut waves)
    }
}

/// Synthesize a certified rollout plan from `base` to `target` under the
/// intent `(scope, controls)`.
///
/// On success every wave-boundary state — indeed every prefix state of
/// the underlying chain — has been verified consistent through a
/// persistent-session probe whose verdict is byte-identical to a cold
/// [`check_configs`](crate::check::check_configs) of the same state. On
/// infeasibility the returned core is deletion-minimal: it admits no safe
/// ordering, and dropping any single member makes it orderable.
pub fn synthesize(
    net: &Network,
    scope: &Scope,
    controls: &[ResolvedControl],
    base: &AclConfig,
    target: &AclConfig,
    cfg: &CheckConfig,
    pcfg: &PlanConfig,
) -> Result<RolloutPlan, PlanError> {
    let sp = cfg.obs.span("plan.run");
    let steps = decompose(net, base, target);
    let max = pcfg.max_steps.min(MAX_PLAN_STEPS);
    if steps.len() > max {
        sp.finish();
        return Err(PlanError::TooManySteps {
            count: steps.len(),
            max,
        });
    }
    cfg.obs.counter_add("plan.steps", steps.len() as u64);
    if steps.is_empty() {
        cfg.obs
            .event(jinjing_obs::Level::Info, "plan.done", "plan: 0 steps in 0 waves");
        sp.finish();
        return Ok(RolloutPlan {
            steps,
            outcome: PlanOutcome::Feasible {
                waves: Vec::new(),
                certificates: Vec::new(),
            },
            stats: PlanStats::default(),
        });
    }
    let session = CheckSession::with_configs(
        net,
        scope.clone(),
        controls.to_vec(),
        base.clone(),
        cfg.clone(),
        IncrConfig::default(),
    )?;
    let mut search = Search {
        session: &session,
        steps: &steps,
        base,
        max_waves: pcfg.max_waves,
        memo: HashMap::new(),
        certs: HashMap::new(),
        witnesses: Vec::new(),
        dead: HashSet::new(),
        stats: PlanStats::default(),
    };
    let universe: u32 = if steps.len() == 32 {
        u32::MAX
    } else {
        (1u32 << steps.len()) - 1
    };
    let search_span = cfg.obs.span("plan.search");
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let found = search.dfs(universe, 0, &mut waves)?;
    search_span.finish();
    let outcome = if found {
        // One certificate per wave boundary: the cumulative state after
        // each wave, looked up from the probe that certified it.
        let mut cumulative = 0u32;
        let mut certificates = Vec::with_capacity(waves.len());
        for wave in &waves {
            for &i in wave {
                cumulative |= 1 << i;
            }
            let info = search.certs[&cumulative];
            let mut state: Vec<String> = (0..steps.len())
                .filter(|&i| cumulative & (1 << i) != 0)
                .map(|i| steps[i].device.clone())
                .collect();
            state.sort();
            certificates.push(WaveCertificate {
                commuting: true,
                fec_count: info.fec_count,
                paths_checked: info.paths_checked,
                dirty_pairs: info.dirty_pairs,
                state,
            });
        }
        PlanOutcome::Feasible {
            waves,
            certificates,
        }
    } else {
        // Deletion filter, iterated to fixpoint: drop any step whose
        // removal leaves the remainder infeasible, and repeat until a
        // full pass drops nothing. Feasibility is not monotone in the
        // step set (a pair can be orderable while either member alone is
        // not), so a single pass certifies minimality only against
        // intermediate supersets; the fixpoint re-checks every survivor
        // against the *final* core, making it deletion-minimal (under
        // the same wave budget as the main search).
        let core_span = cfg.obs.span("plan.core");
        let mut core = universe;
        loop {
            let before = core;
            for i in 0..steps.len() {
                let bit = 1u32 << i;
                if core & bit == 0 {
                    continue;
                }
                let without = core & !bit;
                if !search.feasible(without)? {
                    core = without;
                }
            }
            if core == before {
                break;
            }
        }
        core_span.finish();
        PlanOutcome::Infeasible {
            core: (0..steps.len()).filter(|&i| core & (1 << i) != 0).collect(),
        }
    };
    let mut stats = search.stats;
    stats.pairs_ceiling = stats.prefix_attempts * session.total_pairs();
    cfg.obs
        .counter_add("plan.prefix_attempts", stats.prefix_attempts as u64);
    cfg.obs
        .counter_add("plan.prefix_checks", stats.prefix_checks as u64);
    cfg.obs
        .counter_add("plan.pruned_witness", stats.pruned_witness as u64);
    cfg.obs
        .counter_add("plan.pruned_memo", stats.pruned_memo as u64);
    if let PlanOutcome::Feasible { waves, .. } = &outcome {
        cfg.obs.counter_add("plan.waves", waves.len() as u64);
    }
    let plan = RolloutPlan {
        steps,
        outcome,
        stats,
    };
    cfg.obs
        .event(jinjing_obs::Level::Info, "plan.done", &plan.verdict());
    sp.finish();
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;

    fn acl_move_c1_to_a3out(f: &Figure1) -> AclConfig {
        // Relocate C1's `deny dst 7.0.0.0/8` (its whole ACL) to A3's
        // egress: consistent as a whole, but clearing C before installing
        // A transiently leaks traffic 7.
        let mut target = f.config.clone();
        target.clear(f.slot("C1"));
        target.set(
            Slot::egress(f.iface("A3")),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("7.0.0.0/8")
                .build(),
        );
        target
    }

    fn check_cfg() -> CheckConfig {
        CheckConfig::default()
    }

    #[test]
    fn empty_diff_is_trivially_feasible() {
        let f = Figure1::new();
        let plan = synthesize(
            &f.net,
            &f.scope(),
            &[],
            &f.config,
            &f.config,
            &check_cfg(),
            &PlanConfig::default(),
        )
        .unwrap();
        assert!(plan.is_feasible());
        assert!(plan.steps.is_empty());
        assert_eq!(plan.verdict(), "plan: 0 steps in 0 waves");
    }

    #[test]
    fn relocation_orders_add_before_remove() {
        let f = Figure1::new();
        let target = acl_move_c1_to_a3out(&f);
        let plan = synthesize(
            &f.net,
            &f.scope(),
            &[],
            &f.config,
            &target,
            &check_cfg(),
            &PlanConfig::default(),
        )
        .unwrap();
        assert!(plan.is_feasible(), "{}", plan.verdict());
        let PlanOutcome::Feasible {
            waves,
            certificates,
        } = &plan.outcome
        else {
            unreachable!()
        };
        assert_eq!(certificates.len(), waves.len());
        // The A step (installing the deny) must precede the C step
        // (removing it); both devices appear exactly once.
        let order: Vec<&str> = waves
            .iter()
            .flatten()
            .map(|&i| plan.steps[i].device.as_str())
            .collect();
        let pos = |d: &str| order.iter().position(|x| *x == d).unwrap();
        assert!(pos("A") < pos("C"), "order was {order:?}");
        // Every prefix state of the chain replays cold, byte-identically.
        let mut applied: Vec<usize> = Vec::new();
        for wave in waves {
            for &i in wave {
                applied.push(i);
            }
            let state = apply_steps(&f.config, &plan.steps, &applied);
            let report = crate::check::check_configs(
                &f.net,
                &f.scope(),
                &f.config,
                &state,
                &[],
                &check_cfg(),
            )
            .unwrap();
            assert!(report.outcome.is_consistent());
        }
    }

    #[test]
    fn impossible_swap_reports_minimal_core() {
        let f = Figure1::new();
        // Clearing D2 leaks traffic 1/2 background denies no matter the
        // order — the final state itself is inconsistent, so the plan is
        // infeasible and the core pins the offending device.
        let mut target = f.config.clone();
        target.clear(f.slot("D2"));
        let plan = synthesize(
            &f.net,
            &f.scope(),
            &[],
            &f.config,
            &target,
            &check_cfg(),
            &PlanConfig::default(),
        )
        .unwrap();
        assert!(!plan.is_feasible());
        let PlanOutcome::Infeasible { core } = &plan.outcome else {
            unreachable!()
        };
        let devices: Vec<&str> = core.iter().map(|&i| plan.steps[i].device.as_str()).collect();
        assert_eq!(devices, ["D"]);
        assert_eq!(plan.verdict(), "plan: infeasible (core D)");
    }

    #[test]
    fn max_waves_budget_can_forbid_a_plan() {
        let f = Figure1::new();
        let target = acl_move_c1_to_a3out(&f);
        // The relocation needs the A step strictly before the C step —
        // two waves minimum (their covers overlap on 7.0.0.0/8).
        let plan = synthesize(
            &f.net,
            &f.scope(),
            &[],
            &f.config,
            &target,
            &check_cfg(),
            &PlanConfig {
                max_waves: 1,
                max_steps: MAX_PLAN_STEPS,
            },
        )
        .unwrap();
        assert!(!plan.is_feasible());
    }

    #[test]
    fn too_many_steps_is_an_error() {
        let f = Figure1::new();
        let target = acl_move_c1_to_a3out(&f);
        let err = synthesize(
            &f.net,
            &f.scope(),
            &[],
            &f.config,
            &target,
            &check_cfg(),
            &PlanConfig {
                max_waves: 0,
                max_steps: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::TooManySteps { .. }));
    }
}
