//! The **query layer**: one engine invocation packaged as a canonical,
//! byte-stable document.
//!
//! Historically this lived in `jinjing-cli`, but the CLI is only one
//! front end: the `jinjing-serve` daemon answers the same questions over
//! HTTP and its contract is that a response body is *byte-identical* to
//! the corresponding CLI output. Sharing one renderer is the only honest
//! way to keep that promise (goldens are shared, not duplicated), so the
//! output structs ([`PlanDocument`], [`WatchOutput`]) and the functions
//! that produce them ([`run_query`], [`watch_query`]) live here, beneath
//! both front ends.
//!
//! Canonical JSON means: strict JSON through
//! [`jinjing_obs::json::JsonWriter`], keys in sorted order, no
//! wall-clock, trailing newline — byte-stable across runs, thread counts
//! and cache settings, so golden tests can pin every byte.
//!
//! The session half ([`open_intent_session`], [`recheck_steps`],
//! [`WatchOutput::from_steps`]) is the serving hook: a daemon keeps a
//! [`CheckSession`] resident and replays the `watch` protocol one delta
//! batch per request, rendering each batch with the same writer the CLI
//! uses for a whole script.

use crate::check::CheckOutcome;
use crate::engine::{open_session, render_plan, run, EngineConfig, ReportKind};
use crate::incr::{CheckSession, Delta};
use jinjing_lai::{parse_program, validate};
use jinjing_net::{AclConfig, Network};
use jinjing_obs::json::JsonWriter;

/// Everything that can go wrong executing a query, as a printable
/// message. Front ends map this onto their own error types (CLI exit
/// code 1, HTTP 400).
#[derive(Debug)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for QueryError {}

fn err(e: impl std::fmt::Display) -> QueryError {
    QueryError(e.to_string())
}

/// One changed slot in the machine-readable plan.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// `"device:interface"`.
    pub interface: String,
    /// `"in"` / `"out"`.
    pub direction: String,
    /// The new ACL, one rule per line plus a trailing `default …`.
    pub acl: Vec<String>,
}

/// The machine-readable output of a run.
#[derive(Debug, Clone)]
pub struct PlanDocument {
    /// The command that produced the plan.
    pub command: String,
    /// One-line verdict.
    pub verdict: String,
    /// Changed slots (empty for a bare check).
    pub changes: Vec<PlanEntry>,
}

impl PlanDocument {
    /// Canonical JSON rendering (the `run --format json` output and the
    /// `POST /v1/check|fix|generate` response body): strict JSON, keys in
    /// sorted order, no timings — byte-stable across runs, thread counts
    /// and cache settings, so golden tests can pin it.
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("changes");
        w.begin_array();
        for e in &self.changes {
            w.begin_object();
            w.key("acl");
            w.begin_array();
            for line in &e.acl {
                w.string(line);
            }
            w.end_array();
            w.key("direction");
            w.string(&e.direction);
            w.key("interface");
            w.string(&e.interface);
            w.end_object();
        }
        w.end_array();
        w.key("command");
        w.string(&self.command);
        w.key("verdict");
        w.string(&self.verdict);
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Everything one engine query produces.
#[derive(Debug)]
pub struct RunOutput {
    /// Human-readable report text.
    pub text: String,
    /// Machine-readable plan.
    pub plan: PlanDocument,
    /// The run's observability snapshot (spans, metrics, events);
    /// serialize with [`jinjing_obs::Snapshot::to_json`] for
    /// `--metrics-out`.
    pub obs: jinjing_obs::Snapshot,
}

/// Run an LAI program against a network + configuration under an explicit
/// [`EngineConfig`] (thread override, shared query cache, observability
/// collector). This is the one code path behind `jinjing run` and the
/// daemon's one-shot query endpoints.
pub fn run_query(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    cfg: &EngineConfig,
) -> Result<RunOutput, QueryError> {
    let program = validate(parse_program(intent_text).map_err(err)?).map_err(err)?;
    let command = program.command.expect("validated programs have a command");
    let task = crate::resolve::resolve(net, &program, config).map_err(err)?;
    let report = run(net, &task, cfg).map_err(err)?;

    let mut text = String::new();
    use std::fmt::Write;
    let _ = writeln!(text, "command : {command}");
    let _ = writeln!(text, "verdict : {}", report.verdict());
    match &report.kind {
        ReportKind::Check(r) => {
            let _ = writeln!(
                text,
                "classes : {} examined, {} (class,path) pairs",
                r.fec_count, r.paths_checked
            );
            if let CheckOutcome::Inconsistent(v) = &r.outcome {
                let _ = writeln!(text, "witness : {}", v.packet);
                let _ = writeln!(text, "path    : {}", v.path.display(net.topology()));
                let _ = writeln!(
                    text,
                    "decision: desired {}, got {}",
                    if v.desired { "permit" } else { "deny" },
                    if v.actual { "permit" } else { "deny" }
                );
            }
        }
        ReportKind::Fix(p) => {
            for (slot, rule) in &p.added_rules {
                let _ = writeln!(
                    text,
                    "add     : {}-{} ← {}",
                    net.topology().iface_name(slot.iface),
                    slot.dir,
                    rule
                );
            }
        }
        ReportKind::Generate(g) => {
            let _ = writeln!(
                text,
                "classes : {} AECs ({} DEC-split into {}), {} rows",
                g.aec_count, g.aecs_split, g.dec_count, g.rows
            );
        }
        // `engine::run` never yields a lint or plan report (both have
        // their own entry points), but the match must stay exhaustive.
        ReportKind::Lint(_) | ReportKind::Plan(_) => {}
    }

    let changes = match report.deployable() {
        None => Vec::new(),
        Some(to) => render_plan(net, config, to)
            .into_iter()
            .map(|(slot, name, acl_text)| {
                let (iface, dir) = name.rsplit_once('-').expect("name has -dir suffix");
                let _ = slot;
                PlanEntry {
                    interface: iface.to_string(),
                    direction: dir.to_string(),
                    acl: acl_text
                        .lines()
                        .map(|l| l.trim().to_string())
                        .map(|l| l.replace("(default ", "default ").replace(')', ""))
                        .collect(),
                }
            })
            .collect(),
    };
    let plan = PlanDocument {
        command: command.to_string(),
        verdict: report.verdict(),
        changes,
    };
    Ok(RunOutput {
        text,
        plan,
        obs: report.obs,
    })
}

/// Everything one rollout-plan query produces.
#[derive(Debug)]
pub struct PlanRunOutput {
    /// Human-readable report text.
    pub text: String,
    /// Canonical JSON body (the `jinjing plan --format json` output and
    /// the `POST /v1/plan` response, byte-identical).
    pub json: String,
    /// `false` when no safe ordering exists (CLI exit 3, and the
    /// daemon's `X-Jinjing-Exit: 3`).
    pub feasible: bool,
    /// The run's observability snapshot (`plan.*` spans and counters).
    pub obs: jinjing_obs::Snapshot,
}

/// Render a [`RolloutPlan`](crate::plan::RolloutPlan) as canonical JSON:
/// strict JSON, keys in sorted order, no wall-clock — byte-stable across
/// runs, thread counts, cache settings and warm solvers.
pub fn render_rollout_json(net: &Network, rollout: &crate::plan::RolloutPlan) -> String {
    use crate::plan::PlanOutcome;
    let topo = net.topology();
    let acl_lines = |acl: &jinjing_acl::Acl| -> Vec<String> {
        acl.to_string()
            .lines()
            .map(|l| l.trim().to_string())
            .map(|l| l.replace("(default ", "default ").replace(')', ""))
            .collect()
    };
    let (waves, certificates, core): (&[Vec<usize>], &[crate::plan::WaveCertificate], &[usize]) =
        match &rollout.outcome {
            PlanOutcome::Feasible {
                waves,
                certificates,
            } => (waves, certificates, &[]),
            PlanOutcome::Infeasible { core } => (&[], &[], core),
        };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("certificates");
    w.begin_array();
    for c in certificates {
        w.begin_object();
        w.key("commuting");
        w.bool(c.commuting);
        w.key("dirty_pairs");
        w.u64(c.dirty_pairs as u64);
        w.key("fec_count");
        w.u64(c.fec_count as u64);
        w.key("paths_checked");
        w.u64(c.paths_checked as u64);
        w.key("state");
        w.begin_array();
        for d in &c.state {
            w.string(d);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("command");
    w.string("plan");
    w.key("core");
    w.begin_array();
    for &i in core {
        w.string(&rollout.steps[i].device);
    }
    w.end_array();
    w.key("stats");
    w.begin_object();
    w.key("dirty_pairs");
    w.u64(rollout.stats.dirty_pairs as u64);
    w.key("pairs_ceiling");
    w.u64(rollout.stats.pairs_ceiling as u64);
    w.key("prefix_attempts");
    w.u64(rollout.stats.prefix_attempts as u64);
    w.key("prefix_checks");
    w.u64(rollout.stats.prefix_checks as u64);
    w.key("pruned_memo");
    w.u64(rollout.stats.pruned_memo as u64);
    w.key("pruned_witness");
    w.u64(rollout.stats.pruned_witness as u64);
    w.end_object();
    w.key("steps");
    w.begin_array();
    for s in &rollout.steps {
        w.begin_object();
        w.key("device");
        w.string(&s.device);
        w.key("slots");
        w.begin_array();
        for (slot, acl) in &s.edits {
            w.begin_object();
            w.key("acl");
            w.begin_array();
            let effective = acl
                .clone()
                .unwrap_or_else(jinjing_acl::Acl::permit_all);
            for line in acl_lines(&effective) {
                w.string(&line);
            }
            w.end_array();
            w.key("direction");
            w.string(&slot.dir.to_string());
            w.key("interface");
            w.string(&topo.iface_name(slot.iface));
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("verdict");
    w.string(&rollout.verdict());
    w.key("waves");
    w.begin_array();
    for wave in waves {
        w.begin_array();
        for &i in wave {
            w.string(&rollout.steps[i].device);
        }
        w.end_array();
    }
    w.end_array();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// Synthesize a certified rollout plan from an LAI intent: parse +
/// validate the program, resolve it, derive the target configuration —
/// the current configuration with `target_text` (a delta script) applied,
/// or the intent's own update when `target_text` is `None` — and run
/// [`engine::plan`](crate::engine::plan). The one code path behind
/// `jinjing plan` and the daemon's `POST /v1/plan`.
pub fn plan_query(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    target_text: Option<&str>,
    cfg: &EngineConfig,
) -> Result<PlanRunOutput, QueryError> {
    use crate::plan::PlanOutcome;
    // With an explicit target the intent may be a bare scope (+controls):
    // the update arrives as a delta script, not as modifies.
    let parsed = parse_program(intent_text).map_err(err)?;
    let program = match target_text {
        Some(_) => jinjing_lai::validate_plan_intent(parsed).map_err(err)?,
        None => validate(parsed).map_err(err)?,
    };
    let task = crate::resolve::resolve(net, &program, config).map_err(err)?;
    let target = match target_text {
        Some(text) => {
            let deltas = crate::incr::parse_delta_script(net, text).map_err(err)?;
            let mut t = config.clone();
            for (_label, d) in &deltas {
                t = d.applied_to(&t);
            }
            t
        }
        None => task.after.clone(),
    };
    let report = crate::engine::plan(net, &task, &target, cfg).map_err(err)?;
    let ReportKind::Plan(rollout) = &report.kind else {
        unreachable!("engine::plan yields a plan report")
    };

    use std::fmt::Write;
    let mut text = String::new();
    let _ = writeln!(text, "command : plan");
    let _ = writeln!(text, "verdict : {}", rollout.verdict());
    for s in &rollout.steps {
        let _ = writeln!(text, "step    : {} — {} slot(s)", s.device, s.edits.len());
    }
    match &rollout.outcome {
        PlanOutcome::Feasible { waves, .. } => {
            for (k, wave) in waves.iter().enumerate() {
                let devices: Vec<&str> =
                    wave.iter().map(|&i| rollout.steps[i].device.as_str()).collect();
                let _ = writeln!(text, "wave {:<3}: {}", k + 1, devices.join(", "));
            }
        }
        PlanOutcome::Infeasible { core } => {
            let devices: Vec<&str> =
                core.iter().map(|&i| rollout.steps[i].device.as_str()).collect();
            let _ = writeln!(text, "core    : {}", devices.join(", "));
        }
    }
    let _ = writeln!(
        text,
        "checks  : {} probed / {} attempted, {} dirty pairs vs ceiling {}",
        rollout.stats.prefix_checks,
        rollout.stats.prefix_attempts,
        rollout.stats.dirty_pairs,
        rollout.stats.pairs_ceiling
    );

    Ok(PlanRunOutput {
        text,
        json: render_rollout_json(net, rollout),
        feasible: rollout.is_feasible(),
        obs: report.obs,
    })
}

/// One step of a watch session (one delta's re-check).
#[derive(Debug, Clone)]
pub struct WatchStep {
    /// The delta's label from the script (`step <label>`).
    pub label: String,
    /// `"consistent"` or `"inconsistent (witness …)"`.
    pub verdict: String,
    /// Whether the delta was folded into the session base.
    pub applied: bool,
    /// FEC classes whose cubes intersect this delta's differential cover.
    pub dirty_classes: usize,
    /// FEC classes untouched by the delta (verdicts reused).
    pub clean_classes: usize,
    /// `(class, path)` pairs dispatched to the solver.
    pub dirty_pairs: usize,
    /// FECs examined (0 on the empty-cover fast path).
    pub fec_count: usize,
    /// Pairs folded into the report.
    pub paths_checked: usize,
    /// Cache generation the step ran under.
    pub generation: u64,
    /// Stale cache entries evicted after the step.
    pub evicted: usize,
}

/// Everything a watch session (or one daemon delta batch) produces.
#[derive(Debug)]
pub struct WatchOutput {
    /// Human-readable transcript.
    pub text: String,
    /// Per-delta summaries, in script order.
    pub steps: Vec<WatchStep>,
    /// How many deltas were rejected (inconsistent).
    pub rejected: usize,
    /// FEC classes in the session partition.
    pub class_count: usize,
    /// The session's observability snapshot (`incr.*` spans/counters plus
    /// one `check` span tree per step).
    pub obs: jinjing_obs::Snapshot,
}

impl WatchOutput {
    /// Package an already-executed step batch. `rejected` and the
    /// transcript are derived from the steps, so a daemon rendering one
    /// delta request and the CLI rendering a whole script produce the
    /// same bytes for the same steps.
    pub fn from_steps(
        class_count: usize,
        delta_count: usize,
        steps: Vec<WatchStep>,
        obs: jinjing_obs::Snapshot,
    ) -> WatchOutput {
        use std::fmt::Write;
        let mut text = String::new();
        let _ = writeln!(
            text,
            "session : {class_count} classes, {delta_count} delta(s)"
        );
        for s in &steps {
            let _ = writeln!(
                text,
                "step    : {}: {}{} — {} dirty / {} clean classes, {} pairs",
                s.label,
                s.verdict,
                if s.applied { "" } else { " [rejected]" },
                s.dirty_classes,
                s.clean_classes,
                s.dirty_pairs
            );
        }
        let rejected = steps.iter().filter(|s| !s.applied).count();
        let _ = writeln!(
            text,
            "steps   : {} total, {} rejected",
            steps.len(),
            rejected
        );
        WatchOutput {
            text,
            steps,
            rejected,
            class_count,
            obs,
        }
    }

    /// Canonical JSON rendering (the `watch --format json` output and the
    /// daemon's session-delta response body): strict JSON, sorted keys,
    /// no timings — byte-stable across runs, thread counts and cache
    /// settings.
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("class_count");
        w.u64(self.class_count as u64);
        w.key("rejected");
        w.u64(self.rejected as u64);
        w.key("steps");
        w.begin_array();
        for s in &self.steps {
            w.begin_object();
            w.key("applied");
            w.bool(s.applied);
            w.key("clean_classes");
            w.u64(s.clean_classes as u64);
            w.key("dirty_classes");
            w.u64(s.dirty_classes as u64);
            w.key("dirty_pairs");
            w.u64(s.dirty_pairs as u64);
            w.key("evicted");
            w.u64(s.evicted as u64);
            w.key("fec_count");
            w.u64(s.fec_count as u64);
            w.key("generation");
            w.u64(s.generation);
            w.key("label");
            w.string(&s.label);
            w.key("paths_checked");
            w.u64(s.paths_checked as u64);
            w.key("verdict");
            w.string(&s.verdict);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Open a [`CheckSession`] from an LAI intent: parse + validate the
/// program, resolve it against the current configuration, and seed the
/// session from the task's scope, controls and *current* configuration
/// (the update in the program body, if any, is ignored — deltas arrive
/// through [`recheck_steps`]). The daemon's `POST /v1/sessions` hook.
pub fn open_intent_session<'n>(
    net: &'n Network,
    config: &AclConfig,
    intent_text: &str,
    cfg: &EngineConfig,
) -> Result<CheckSession<'n>, QueryError> {
    let program = validate(parse_program(intent_text).map_err(err)?).map_err(err)?;
    let task = crate::resolve::resolve(net, &program, config).map_err(err)?;
    open_session(net, &task, cfg).map_err(err)
}

/// Run a batch of labeled deltas through a session, one
/// [`CheckSession::recheck`] per delta, returning the per-step summaries
/// in script order. Consistent deltas advance the session base;
/// inconsistent ones are rejected and leave it untouched (the session's
/// [`crate::incr::IncrConfig`] policy). The daemon's
/// `POST /v1/sessions/{id}/delta` hook, and the loop inside
/// [`watch_query`].
pub fn recheck_steps(
    session: &mut CheckSession<'_>,
    deltas: &[(String, Delta)],
) -> Result<Vec<WatchStep>, QueryError> {
    let mut steps = Vec::with_capacity(deltas.len());
    for (label, delta) in deltas {
        let r = session.recheck(delta).map_err(err)?;
        let verdict = match &r.report.outcome {
            CheckOutcome::Consistent => "consistent".to_string(),
            CheckOutcome::Inconsistent(v) => format!("inconsistent (witness {})", v.packet),
        };
        steps.push(WatchStep {
            label: label.clone(),
            verdict,
            applied: r.applied,
            dirty_classes: r.incr.dirty_classes,
            clean_classes: r.incr.clean_classes,
            dirty_pairs: r.incr.dirty_pairs,
            fec_count: r.report.fec_count,
            paths_checked: r.report.paths_checked,
            generation: r.generation,
            evicted: r.evicted,
        });
    }
    Ok(steps)
}

/// Run an incremental check session over a whole delta script (the
/// `jinjing watch` / `run --session` path): open the session, parse the
/// script, feed every delta through [`recheck_steps`] and package the
/// result. Verdicts are byte-identical to cold per-step checks.
pub fn watch_query(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    deltas_text: &str,
    cfg: &EngineConfig,
) -> Result<WatchOutput, QueryError> {
    let deltas = crate::incr::parse_delta_script(net, deltas_text).map_err(err)?;
    let mut session = open_intent_session(net, config, intent_text, cfg)?;
    let class_count = session.class_count();
    let steps = recheck_steps(&mut session, &deltas)?;
    Ok(WatchOutput::from_steps(
        class_count,
        deltas.len(),
        steps,
        cfg.obs.snapshot(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;

    const CHECK_INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";

    #[test]
    fn run_query_is_byte_stable() {
        let f = Figure1::new();
        let render = || {
            run_query(&f.net, &f.config, CHECK_INTENT, &EngineConfig::default())
                .unwrap()
                .plan
                .to_canonical_json()
        };
        let json = render();
        assert!(json.starts_with("{\"changes\":["), "{json}");
        assert!(json.contains("\"command\":\"check\""), "{json}");
        assert!(json.ends_with("}\n"));
        assert_eq!(json, render());
    }

    #[test]
    fn watch_query_batches_equal_one_shot_script() {
        // The serving contract in miniature: a daemon replaying the same
        // deltas in two batches must concatenate to the same steps as the
        // CLI's one-shot script run.
        let f = Figure1::new();
        let script = "step a\nset D:2 deny dst 2.0.0.0/8; deny dst 1.0.0.0/8\nstep b\n";
        let whole = watch_query(
            &f.net,
            &f.config,
            CHECK_INTENT,
            script,
            &EngineConfig::default(),
        )
        .unwrap();

        let cfg = EngineConfig::default();
        let mut session = open_intent_session(&f.net, &f.config, CHECK_INTENT, &cfg).unwrap();
        let class_count = session.class_count();
        let deltas = crate::incr::parse_delta_script(&f.net, script).unwrap();
        let first = recheck_steps(&mut session, &deltas[..1]).unwrap();
        let second = recheck_steps(&mut session, &deltas[1..]).unwrap();
        let batch1 = WatchOutput::from_steps(class_count, 1, first, cfg.obs.snapshot());
        let batch2 = WatchOutput::from_steps(class_count, 1, second, cfg.obs.snapshot());
        let mut merged: Vec<WatchStep> = batch1.steps;
        merged.extend(batch2.steps);
        let merged = WatchOutput::from_steps(class_count, 2, merged, cfg.obs.snapshot());
        assert_eq!(merged.to_canonical_json(), whole.to_canonical_json());
    }

    #[test]
    fn query_errors_are_messages_not_panics() {
        let f = Figure1::new();
        let e = run_query(
            &f.net,
            &f.config,
            "scope Z:*\ncheck\n",
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert!(!e.to_string().is_empty());
        let e = watch_query(
            &f.net,
            &f.config,
            CHECK_INTENT,
            "set Z:9 permit all\n",
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown interface"), "{e}");
    }
}
