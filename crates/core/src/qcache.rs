//! Cross-query solver cache for the check/fix/generate hot loops.
//!
//! Every Eq. 3 consistency query compares a *path decision model* — the
//! conjunction of per-slot ACL circuits — before and after the update,
//! confined to a packet region. WAN topologies route many FECs through the
//! same ACL chains, so the identical `(ordered slot ACLs, encoding, verb,
//! region)` comparison recurs across paths, classes, and even across
//! engine phases (`fix` re-certifies with the same queries `check` just
//! ran). The [`QueryCache`] solves each distinct comparison once.
//!
//! **Keying.** A [`QueryKey`] stores the *full* structural inputs — the
//! reduced before/after ACL pair per slot (in path order), the control
//! verb, the encoding kind, and the confining packet region — plus a
//! precomputed 64-bit fingerprint. `Hash` writes only the fingerprint;
//! `Eq` compares the full structure, so fingerprint collisions degrade to
//! ordinary `HashMap` bucket collisions and can never return a wrong
//! entry. The fingerprint function is injectable
//! ([`QueryCache::with_fingerprint`]) precisely so tests can force
//! collisions-by-construction and pin that property.
//!
//! **Determinism.** A [`CachedSolve`] stores everything a query execution
//! would have produced: the verdict, the decoded model packet (for `Sat`),
//! the per-query [`SolverStats`] delta and the instance size. Replaying a
//! hit is therefore observationally identical to re-solving (the CDCL
//! solver is deterministic), which is what keeps `CheckReport`s
//! byte-identical with the cache on or off.
//!
//! **Sharding.** The map is split into [`SHARDS`] shards, each behind its
//! own [`Mutex`], selected by key fingerprint. Lookups never hold a shard
//! lock across a solver call: miss → release → solve → re-lock → insert
//! (first writer wins), so concurrent workers at worst duplicate a solve,
//! never serialize on one.
//!
//! **Generations.** Long-lived caches (the incremental
//! [`CheckSession`](crate::incr::CheckSession)) tag every entry with the
//! cache's current *generation* — a monotonically increasing epoch bumped
//! once per `recheck` via [`QueryCache::advance_generation`]. A hit
//! refreshes the entry's tag, so [`QueryCache::evict_stale`] can drop
//! entries that no recent generation touched, bounding the resident set of
//! a session that runs for thousands of deltas. Eviction only ever causes
//! a re-solve (the solver is deterministic), never a wrong answer, so
//! generations are invisible to the determinism contract.

use jinjing_acl::{Acl, Field, Packet, PacketSet};
use jinjing_lai::ControlVerb;
use jinjing_solver::aclenc::Encoding;
use jinjing_solver::{acl_fingerprint, SolveResult, SolverStats};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

pub(crate) fn region_fingerprint(set: &PacketSet) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, set.cubes().len() as u64);
    for cube in set.cubes() {
        for f in Field::ALL {
            let iv = cube.get(f);
            fnv_mix(&mut h, iv.lo());
            fnv_mix(&mut h, iv.hi());
        }
    }
    h
}

/// The full structural identity of one decision-model comparison query.
///
/// Two keys are equal iff every component is structurally equal; the
/// stored fingerprint only routes hashing. Construct via
/// [`QueryCache::key`] so the fingerprint matches the cache's function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryKey {
    /// Precomputed fingerprint over all components (the only thing
    /// `Hash` sees).
    hash: u64,
    /// Ordered `(before, after)` reduced ACL pair per slot on the path.
    chain: Vec<(Acl, Acl)>,
    /// Control verb rewriting the desired side (`None` = maintain).
    verb: Option<ControlVerb>,
    /// Decision-model encoding the circuit was built with.
    encoding: Encoding,
    /// Packet region the query is confined to (`None` = full space, i.e.
    /// the differential optimization is off).
    region: Option<PacketSet>,
}

impl QueryKey {
    /// The precomputed fingerprint (exposed for diagnostics/tests).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// Build a key with the default ACL fingerprint ([`acl_fingerprint`]).
    ///
    /// Key material is *dimension-free* with respect to execution
    /// strategy: warm/cold solver layer, thread count and cache settings
    /// never enter the key — only the structural query inputs do — so a
    /// hit stored by any execution path replays byte-identically on every
    /// other. The warm layer ([`crate::warm::ScopeSolver`]) keys its
    /// solver families with exactly these keys for the same reason.
    #[must_use]
    pub fn build(
        chain: &[(&Acl, &Acl)],
        verb: Option<ControlVerb>,
        encoding: Encoding,
        region: Option<&PacketSet>,
    ) -> QueryKey {
        make_key(acl_fingerprint, chain, verb, encoding, region)
    }
}

/// Shared key constructor: fingerprint every structural component with
/// `fingerprint`, then store the full structure for collision-safe `Eq`.
fn make_key(
    fingerprint: fn(&Acl) -> u64,
    chain: &[(&Acl, &Acl)],
    verb: Option<ControlVerb>,
    encoding: Encoding,
    region: Option<&PacketSet>,
) -> QueryKey {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, chain.len() as u64);
    for (b, a) in chain {
        fnv_mix(&mut h, fingerprint(b));
        fnv_mix(&mut h, fingerprint(a));
    }
    fnv_mix(
        &mut h,
        match verb {
            None => 0,
            Some(ControlVerb::Maintain) => 1,
            Some(ControlVerb::Isolate) => 2,
            Some(ControlVerb::Open) => 3,
        },
    );
    fnv_mix(
        &mut h,
        match encoding {
            Encoding::Sequential => 0,
            Encoding::Tree => 1,
        },
    );
    match region {
        None => fnv_mix(&mut h, 0),
        Some(set) => {
            fnv_mix(&mut h, 1);
            fnv_mix(&mut h, region_fingerprint(set));
        }
    }
    QueryKey {
        hash: h,
        chain: chain
            .iter()
            .map(|(b, a)| ((*b).clone(), (*a).clone()))
            .collect(),
        verb,
        encoding,
        region: region.cloned(),
    }
}

impl Hash for QueryKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Everything one query execution produces, stored for replay.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The verdict.
    pub result: SolveResult,
    /// Decoded model packet when `Sat`.
    pub model: Option<Packet>,
    /// Per-query stats delta (merged into reports on hit exactly as a
    /// fresh solve would be).
    pub stats: SolverStats,
    /// Instance size at solve time: variables.
    pub vars: usize,
    /// Instance size at solve time: clauses.
    pub clauses: usize,
}

/// One stored entry: the replayable solve plus the last generation that
/// touched it (insert or hit).
#[derive(Debug, Clone)]
struct Entry {
    value: CachedSolve,
    last_used: u64,
}

/// A sharded, collision-safe, cross-query solver cache with generation
/// tags for session-style eviction.
pub struct QueryCache {
    shards: Vec<Mutex<HashMap<QueryKey, Entry>>>,
    fingerprint: fn(&Acl) -> u64,
    /// Current generation (epoch). Entries are stamped with this on insert
    /// and refreshed on hit.
    generation: AtomicU64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::new()
    }
}

impl QueryCache {
    /// Fresh cache using the real ACL fingerprint.
    #[must_use]
    pub fn new() -> QueryCache {
        QueryCache::with_fingerprint(acl_fingerprint)
    }

    /// Fresh cache with an injected ACL fingerprint function. Tests use
    /// degenerate functions (e.g. `|_| 0`) to force every key into one
    /// bucket and prove that correctness never depends on fingerprint
    /// quality.
    #[must_use]
    pub fn with_fingerprint(fingerprint: fn(&Acl) -> u64) -> QueryCache {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            fingerprint,
            generation: AtomicU64::new(0),
        }
    }

    /// The current generation (epoch) of the cache.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Start a new generation and return it. Sessions call this once per
    /// `recheck`, so "entry untouched for `n` generations" means "unused by
    /// the last `n` rechecks".
    pub fn advance_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Drop every entry whose last use is more than `keep` generations old
    /// (i.e. `last_used + keep < current`). Returns the number of evicted
    /// entries. `keep == u64::MAX` never evicts.
    pub fn evict_stale(&self, keep: u64) -> usize {
        let current = self.generation();
        let mut evicted = 0;
        for s in &self.shards {
            let mut map = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let before = map.len();
            map.retain(|_, e| e.last_used.saturating_add(keep) >= current);
            evicted += before - map.len();
        }
        evicted
    }

    /// Build a key for the comparison of the ordered slot `chain` under
    /// `verb`/`encoding`, confined to `region`.
    #[must_use]
    pub fn key(
        &self,
        chain: &[(&Acl, &Acl)],
        verb: Option<ControlVerb>,
        encoding: Encoding,
        region: Option<&PacketSet>,
    ) -> QueryKey {
        make_key(self.fingerprint, chain, verb, encoding, region)
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<HashMap<QueryKey, Entry>> {
        &self.shards[(key.hash as usize) & (SHARDS - 1)]
    }

    /// Look up a key, refreshing its generation tag on hit. Clones the
    /// stored value (all components are cheap).
    #[must_use]
    pub fn get(&self, key: &QueryKey) -> Option<CachedSolve> {
        let generation = self.generation();
        let mut map = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get_mut(key).map(|e| {
            e.last_used = generation;
            e.value.clone()
        })
    }

    /// Insert a value; the first writer wins so the stored value stays
    /// canonical even if concurrent workers raced on the same miss (a
    /// duplicate insert still refreshes the generation tag).
    pub fn insert(&self, key: QueryKey, value: CachedSolve) {
        let generation = self.generation();
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .and_modify(|e| e.last_used = generation)
            .or_insert(Entry {
                value,
                last_used: generation,
            });
    }

    /// Fetch the cached result for `key`, or run `solve` and remember it.
    /// Returns `(value, hit)`. The shard lock is **not** held while
    /// `solve` runs, so concurrent misses on the same key duplicate work
    /// (benignly — the solver is deterministic) instead of serializing.
    pub fn get_or_solve(
        &self,
        key: QueryKey,
        solve: impl FnOnce() -> CachedSolve,
    ) -> (CachedSolve, bool) {
        if let Some(v) = self.get(&key) {
            return (v, true);
        }
        let v = solve();
        self.insert(key, v.clone());
        (v, false)
    }

    /// Total entries across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// `true` when no entry is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (used between unrelated workloads in benches).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::AclBuilder;

    fn acl_a() -> Acl {
        AclBuilder::default_permit().deny_dst("1.0.0.0/8").build()
    }

    fn acl_b() -> Acl {
        AclBuilder::default_permit().deny_dst("2.0.0.0/8").build()
    }

    fn dummy(result: SolveResult) -> CachedSolve {
        CachedSolve {
            result,
            model: None,
            stats: SolverStats::default(),
            vars: 1,
            clauses: 1,
        }
    }

    #[test]
    fn hit_and_miss_round_trip() {
        let cache = QueryCache::new();
        let a = acl_a();
        let b = acl_b();
        let key = cache.key(&[(&a, &b)], None, Encoding::Tree, None);
        assert!(cache.get(&key).is_none());
        let (v, hit) = cache.get_or_solve(key.clone(), || dummy(SolveResult::Unsat));
        assert!(!hit);
        assert_eq!(v.result, SolveResult::Unsat);
        let (v2, hit2) = cache.get_or_solve(key, || panic!("must not re-solve"));
        assert!(hit2);
        assert_eq!(v2.result, SolveResult::Unsat);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_components_make_distinct_keys() {
        let cache = QueryCache::new();
        let a = acl_a();
        let b = acl_b();
        let base = cache.key(&[(&a, &b)], None, Encoding::Tree, None);
        let swapped = cache.key(&[(&b, &a)], None, Encoding::Tree, None);
        let verbed = cache.key(
            &[(&a, &b)],
            Some(ControlVerb::Isolate),
            Encoding::Tree,
            None,
        );
        let seq = cache.key(&[(&a, &b)], None, Encoding::Sequential, None);
        let full = PacketSet::full();
        let regioned = cache.key(&[(&a, &b)], None, Encoding::Tree, Some(&full));
        for other in [&swapped, &verbed, &seq, &regioned] {
            assert_ne!(&base, other);
        }
        cache.insert(base.clone(), dummy(SolveResult::Unsat));
        assert!(cache.get(&swapped).is_none());
        assert!(cache.get(&verbed).is_none());
        assert!(cache.get(&seq).is_none());
        assert!(cache.get(&regioned).is_none());
    }

    #[test]
    fn colliding_fingerprints_never_alias_entries() {
        // Degenerate fingerprint: every ACL hashes to 0, so every key
        // lands in one shard bucket chain. Structural Eq must still keep
        // the entries apart.
        let cache = QueryCache::with_fingerprint(|_| 0);
        let a = acl_a();
        let b = acl_b();
        let k1 = cache.key(&[(&a, &b)], None, Encoding::Tree, None);
        let k2 = cache.key(&[(&b, &a)], None, Encoding::Tree, None);
        let k3 = cache.key(&[(&a, &a)], None, Encoding::Tree, None);
        assert_eq!(k1.fingerprint(), k2.fingerprint());
        assert_eq!(k1.fingerprint(), k3.fingerprint());
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        cache.insert(k1.clone(), dummy(SolveResult::Sat));
        cache.insert(k2.clone(), dummy(SolveResult::Unsat));
        assert_eq!(cache.get(&k1).unwrap().result, SolveResult::Sat);
        assert_eq!(cache.get(&k2).unwrap().result, SolveResult::Unsat);
        assert!(cache.get(&k3).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn first_writer_wins() {
        let cache = QueryCache::new();
        let a = acl_a();
        let key = cache.key(&[(&a, &a)], None, Encoding::Tree, None);
        cache.insert(key.clone(), dummy(SolveResult::Sat));
        cache.insert(key.clone(), dummy(SolveResult::Unsat));
        assert_eq!(cache.get(&key).unwrap().result, SolveResult::Sat);
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = QueryCache::new();
        let a = acl_a();
        let b = acl_b();
        for (i, chain) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)].iter().enumerate() {
            let key = cache.key(&[*chain], None, Encoding::Tree, None);
            cache.insert(
                key,
                dummy(if i % 2 == 0 {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                }),
            );
        }
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn generations_advance_and_evict_stale_entries() {
        let cache = QueryCache::new();
        let a = acl_a();
        let b = acl_b();
        let old_key = cache.key(&[(&a, &b)], None, Encoding::Tree, None);
        cache.insert(old_key.clone(), dummy(SolveResult::Unsat)); // gen 0
        assert_eq!(cache.generation(), 0);
        assert_eq!(cache.advance_generation(), 1);
        let new_key = cache.key(&[(&b, &a)], None, Encoding::Tree, None);
        cache.insert(new_key.clone(), dummy(SolveResult::Sat)); // gen 1
        assert_eq!(cache.advance_generation(), 2);
        // keep=2: gen-0 entry still within the window.
        assert_eq!(cache.evict_stale(2), 0);
        // keep=1: the gen-0 entry is stale, the gen-1 entry survives.
        assert_eq!(cache.evict_stale(1), 1);
        assert!(cache.get(&old_key).is_none());
        assert!(cache.get(&new_key).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hits_refresh_the_generation_tag() {
        let cache = QueryCache::new();
        let a = acl_a();
        let b = acl_b();
        let hot = cache.key(&[(&a, &b)], None, Encoding::Tree, None);
        let cold = cache.key(&[(&b, &a)], None, Encoding::Tree, None);
        cache.insert(hot.clone(), dummy(SolveResult::Unsat)); // gen 0
        cache.insert(cold.clone(), dummy(SolveResult::Unsat)); // gen 0
        for _ in 0..3 {
            cache.advance_generation();
            assert!(cache.get(&hot).is_some(), "hit refreshes the tag");
        }
        // gen is now 3; `hot` was touched at gen 3, `cold` at gen 0.
        assert_eq!(cache.evict_stale(1), 1);
        assert!(cache.get(&hot).is_some());
        assert!(cache.get(&cold).is_none());
    }

    #[test]
    fn keep_max_never_evicts() {
        let cache = QueryCache::new();
        let a = acl_a();
        let key = cache.key(&[(&a, &a)], None, Encoding::Tree, None);
        cache.insert(key, dummy(SolveResult::Unsat));
        for _ in 0..10 {
            cache.advance_generation();
        }
        assert_eq!(cache.evict_stale(u64::MAX), 0);
        assert_eq!(cache.len(), 1);
    }
}
