//! The **check** primitive (§4.1, Algorithm 1).
//!
//! Verifies that an updated configuration `L'_Ω` achieves the desired
//! reachability: for every forwarding equivalence class entering the scope
//! and every path that class can take, the updated path decision must equal
//! the desired one (the original decision, transformed by any `control`
//! statements). The per-class query is Eq. 3, solved by the CDCL engine
//! after circuit compilation.
//!
//! Optimizations (both on by default, both switchable for the Figure 4a
//! ablation):
//!
//! - **Differential rules** (Definitions 4.1/4.2, Theorem 4.1): each ACL is
//!   reduced to the rules related to the update's differential rules, and
//!   the solver is additionally confined to the differential packet cover
//!   `H` (packets outside `H` meet identical rule subsequences before and
//!   after, so they cannot witness an inconsistency; `control`ed regions
//!   join the cover per §6).
//! - **Tree decision-model encoding** (§4.1 "ACL decision model
//!   optimization"): balanced tournament-tree circuits instead of the
//!   sequential first-match chain.
//!
//! **Parallel query engine.** The per-`(class, path)` queries are
//! independent SAT instances, dispatched through `jinjing-par`'s
//! work-stealing pool (`CheckConfig::threads` / `JINJING_THREADS`; the
//! default is the exact serial path). Each pair runs a *two-stage* query:
//! stage 1 asks for a disagreeing packet anywhere in the differential
//! cover — a class-independent question keyed and cached in
//! [`crate::qcache`] so FECs sharing an ACL chain solve it once — and
//! stage 2 (only when stage 1's model misses the class) pins the witness
//! inside the class. Results fold in class-major order, stopping at the
//! first violation, so reports are byte-identical across thread counts
//! and cache settings.
//!
//! [`check_exact`] is the set-algebra reference oracle: slower but purely
//! exact, used to cross-validate the solver path in tests.
//!
//! **Session reuse.** The internal [`check_inner`] entry point optionally
//! takes a [`SessionMemo`] — config-independent state (FEC classes, lazily
//! enumerated per-class paths) that [`crate::incr`]'s `CheckSession` keeps
//! alive across a stream of deltas. The memoized values are produced by
//! the very same deterministic code (`derive_classes`,
//! `all_paths_for_class`), so a session re-check is byte-identical to a
//! cold check of the same pair of configurations.

use crate::control::{control_regions, desired_decision, desired_permit_set, ResolvedControl};
use crate::qcache::{CachedSolve, QueryCache};
use crate::task::Task;
use jinjing_acl::atoms::{refine, ClassExplosion, RefineLimits};
use jinjing_acl::diff::AclDiff;
use jinjing_acl::{Acl, Packet, PacketSet};
use jinjing_lai::ControlVerb;
use jinjing_net::{AclConfig, Network, Path, Scope, Slot};
use jinjing_par::{Cancel, Pool};
use jinjing_solver::aclenc::{encode, Encoding};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::{CircuitBuilder, HeaderVars, SolverStats};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for check.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Apply the differential-rule reduction (Theorem 4.1).
    pub differential: bool,
    /// Decision-model encoding for the solver circuits.
    pub encoding: Encoding,
    /// Equivalence-class caps.
    pub refine_limits: RefineLimits,
    /// Worker threads for the per-`(class, path)` query fan-out. `0` means
    /// "auto": consult `JINJING_THREADS`, defaulting to 1 (serial — the
    /// exact historical code path). Reports are byte-identical for every
    /// value (see `jinjing-par`'s determinism contract).
    pub threads: usize,
    /// Cross-query solver cache: identical decision-model comparisons
    /// across paths/FECs (and across engine phases, when shared) are
    /// solved once. `None` disables caching; replaying a hit is
    /// observationally identical to re-solving, so reports do not depend
    /// on this setting.
    pub cache: Option<Arc<QueryCache>>,
    /// Warm solver layer: persistent per-scope solver families
    /// ([`crate::warm::ScopeSolver`]) absorb the stage-1 circuit
    /// constructions — each distinct ACL chain is encoded once and its
    /// canonical first solve memoized, so repeat queries (across paths,
    /// FECs, engine phases and session re-checks) replay instead of
    /// rebuilding. `None` disables the layer; a warm answer is
    /// byte-identical to a cold one by construction, so reports do not
    /// depend on this setting either.
    pub warm: Option<Arc<crate::warm::ScopeSolver>>,
    /// Observability sink: phase spans, solver histograms, events. A fresh
    /// (private) collector by default; the engine shares one per run.
    pub obs: jinjing_obs::Collector,
    /// Restrict this run to the equivalence classes owned by one shard of
    /// a consistent-hash partition (see [`jinjing_acl::shard`]). `None` —
    /// the default — checks every class. The filter composes *after*
    /// candidate enumeration, so per-class indices stay global and
    /// per-shard verdicts are directly comparable across shards.
    pub shard: Option<jinjing_acl::shard::ShardSpec>,
    /// Distributed solving hook: when set, the per-pair solver fan-out is
    /// replaced by one [`CheckDelegate::check`] call (the shard
    /// coordinator's remote fan-out). Everything else — preprocessing,
    /// refinement, path enumeration, violation materialization — still
    /// runs locally, which is what makes the delegated report
    /// byte-identical to a single-process run.
    pub delegate: Option<Arc<dyn CheckDelegate>>,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            differential: true,
            encoding: Encoding::Tree,
            refine_limits: RefineLimits::default(),
            threads: 0,
            cache: Some(Arc::new(QueryCache::new())),
            warm: Some(Arc::new(crate::warm::ScopeSolver::new())),
            obs: jinjing_obs::Collector::new(),
            shard: None,
            delegate: None,
        }
    }
}

/// A remote solving backend for check: given the exact before/after
/// configurations, return the **global** `(class index, path index)` of
/// the minimal violating pair, or `None` when every pair is consistent.
///
/// The contract mirrors the deterministic fold: "minimal" means first in
/// class-major, path-minor order over the global candidate list, which is
/// exactly what a coordinator gets by taking the lexicographic minimum of
/// per-shard minima (shard filters preserve global indices and order).
/// The caller re-solves the named pair locally to materialize the witness
/// packet, so a delegate never ships packets or models — only indices.
pub trait CheckDelegate: std::fmt::Debug + Send + Sync {
    /// Solve the fan-out for `before → after`; `Err` strings surface as
    /// [`CheckError::Shard`].
    fn check(&self, before: &AclConfig, after: &AclConfig) -> Result<Option<(usize, usize)>, String>;
}

/// Why a check run failed to produce a verdict.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// Equivalence-class refinement exceeded its configured caps.
    Classes(ClassExplosion),
    /// The shard fan-out failed: a backend was unreachable, replied with a
    /// malformed shard report, or named a verdict that did not reproduce
    /// locally. Never a partial result — a failed fan-out fails the run.
    Shard(String),
}

impl From<ClassExplosion> for CheckError {
    fn from(e: ClassExplosion) -> CheckError {
        CheckError::Classes(e)
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Classes(e) => write!(f, "{e}"),
            CheckError::Shard(msg) => write!(f, "shard fan-out failed: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// One witnessed inconsistency.
#[derive(Debug, Clone)]
pub struct Violation {
    /// A packet whose decision changed.
    pub packet: Packet,
    /// A path on which it changed.
    pub path: Path,
    /// The desired decision on that path.
    pub desired: bool,
    /// The decision the updated configuration actually takes.
    pub actual: bool,
}

/// The verdict.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Desired reachability holds for all classes and paths.
    Consistent,
    /// At least one packet/path pair changed decision.
    Inconsistent(Violation),
}

impl CheckOutcome {
    /// `true` for [`CheckOutcome::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, CheckOutcome::Consistent)
    }
}

/// The result of a check run, with workload metrics.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Verdict.
    pub outcome: CheckOutcome,
    /// Number of forwarding equivalence classes examined.
    pub fec_count: usize,
    /// Total (class, path) pairs encoded.
    pub paths_checked: usize,
    /// Aggregated solver statistics across all per-class queries.
    pub solver_stats: SolverStats,
    /// ACL rules fed to the encoder after (or without) reduction.
    pub encoded_rules: usize,
    /// ACL rules in the original configurations.
    pub total_rules: usize,
    /// Wall-clock split: differential preprocessing.
    pub t_preprocess: std::time::Duration,
    /// Wall-clock split: FEC derivation.
    pub t_refine: std::time::Duration,
    /// Wall-clock split: path enumeration.
    pub t_paths: std::time::Duration,
    /// Wall-clock split: circuit construction + solving.
    pub t_solve: std::time::Duration,
    /// The violating pair's **global** `(class index, path index)`, when
    /// inconsistent. This is the coordinate a shard backend reports over
    /// the wire (the witness packet is re-derived locally by whoever needs
    /// it), and it is `None` for [`check_per_acl`], whose synthetic paths
    /// have no global coordinates.
    pub violation_pair: Option<(usize, usize)>,
}

/// Per-slot preprocessed encoding inputs.
pub(crate) struct SlotPair {
    pub(crate) before: Acl,
    pub(crate) after: Acl,
}

/// Preprocess the configurations: per-slot diffs are unioned into the
/// *global* `Diff_Ω` (as §4.1 prescribes — "taking the union over all the
/// differential rules gives us a set Diff_Ω"), every slot's before/after
/// ACLs are reduced to the rules related to that global set, and the
/// differential packet cover `H` is assembled.
///
/// Using the global set is what makes the reduction sound across *path
/// conjunctions*: for any packet in `H`, every rule it can match anywhere
/// in the scope overlaps a differential rule, so every slot's reduced
/// decision equals its full decision on `H` — the encoded path models are
/// exact precisely where counterexamples can live.
///
/// Per §6, `isolate`/`open` control regions join both the relatedness test
/// and the cover (their packets can be inconsistent without any ACL edit).
///
/// The fourth return value counts the `AclDiff::compute` invocations pass 1
/// actually performed. Under a session the per-slot diffs are memoized in
/// the [`SessionMemo`] (keyed by the exact ACL pair), so a stream of
/// re-checks or plan probes touching the same `(before, after)` pair at a
/// slot diffs it once; the count surfaces as the session-only
/// `incr.cover_rebuilds` counter.
pub(crate) fn preprocess(
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    differential: bool,
    session: Option<&SessionMemo>,
) -> (HashMap<Slot, SlotPair>, PacketSet, usize, usize) {
    let mut slots: Vec<Slot> = before.slots();
    for s in after.slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    let mut pairs = HashMap::new();
    let mut encoded_rules = 0usize;
    let mut cover_rebuilds = 0usize;
    if !differential {
        for slot in slots {
            let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
            let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
            encoded_rules += b.len() + a.len();
            pairs.insert(
                slot,
                SlotPair {
                    before: b,
                    after: a,
                },
            );
        }
        return (pairs, PacketSet::full(), encoded_rules, cover_rebuilds);
    }
    // Pass 1: global differential rules and their packet cover. Untouched
    // slots (`b == a`) are skipped outright — a self-diff has no
    // differential rules and an empty cover, so it contributes nothing —
    // which makes this pass proportional to the *edit*, not the
    // configuration (the property `incr`'s per-delta re-checks lean on).
    let mut global_diff: Vec<jinjing_acl::Rule> = Vec::new();
    let mut cover = PacketSet::empty();
    for &slot in &slots {
        let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        if b == a {
            continue;
        }
        let d: Arc<AclDiff> = match session {
            Some(memo) => memo.diff_for(slot, &b, &a, &mut cover_rebuilds),
            None => {
                cover_rebuilds += 1;
                Arc::new(AclDiff::compute(&b, &a))
            }
        };
        cover = cover.union(&d.cover);
        for r in &d.diff {
            if !global_diff.contains(r) {
                global_diff.push(*r);
            }
        }
    }
    // §6: isolate/open regions participate in relatedness and the cover.
    let mut control_sets: Vec<PacketSet> = Vec::new();
    for c in controls {
        if matches!(c.verb, ControlVerb::Isolate | ControlVerb::Open) {
            cover = cover.union(&c.region);
            control_sets.push(c.region.clone());
        }
    }
    // Pass 2: reduce every slot against the global set, via the §5.5
    // search tree over the differential rules.
    let diff_tree =
        jinjing_acl::rtree::RuleTree::build(global_diff.iter().map(|r| r.matches).collect());
    let keep = |rule: &jinjing_acl::Rule| -> bool {
        diff_tree.overlaps_any(&rule.matches)
            || control_sets
                .iter()
                .any(|s| s.intersects(&PacketSet::from_cube(rule.matches.cube())))
    };
    for slot in slots {
        let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let rb: Vec<jinjing_acl::Rule> = b.rules().iter().filter(|r| keep(r)).copied().collect();
        let ra: Vec<jinjing_acl::Rule> = a.rules().iter().filter(|r| keep(r)).copied().collect();
        encoded_rules += rb.len() + ra.len();
        pairs.insert(
            slot,
            SlotPair {
                before: Acl::new(rb, b.default_action()),
                after: Acl::new(ra, a.default_action()),
            },
        );
    }
    (pairs, cover, encoded_rules, cover_rebuilds)
}

/// Run check on a resolved task.
pub fn check(net: &Network, task: &Task, cfg: &CheckConfig) -> Result<CheckReport, CheckError> {
    check_configs(
        net,
        &task.scope,
        &task.before,
        &task.after,
        &task.controls,
        cfg,
    )
}

/// Run check on explicit before/after configurations.
pub fn check_configs(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    cfg: &CheckConfig,
) -> Result<CheckReport, CheckError> {
    check_inner(net, scope, before, after, controls, cfg, None).map(|(r, _)| r)
}

/// Dirty/clean workload split of one check run.
///
/// For a session re-check ([`crate::incr`]) this is the incremental
/// ledger: `dirty_*` is the work actually (re-)done under the delta,
/// `clean_classes` the FECs whose verdicts were reused wholesale because
/// their packet cubes miss the delta's differential cover (Theorem 4.1
/// applied across time). A cold run reports the same split — there the
/// "clean" classes are the ordinary Theorem 4.1 skips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// FEC classes intersecting the differential cover (queries ran).
    pub dirty_classes: usize,
    /// FEC classes disjoint from the cover (verdict reused, no queries).
    pub clean_classes: usize,
    /// `(class, path)` pairs actually dispatched to the solver fan-out.
    pub dirty_pairs: usize,
}

/// One memoized per-slot differential: the exact ACL pair it was computed
/// for, and the shared diff.
struct CoverEntry {
    before: Acl,
    after: Acl,
    diff: Arc<AclDiff>,
}

/// Config-independent state a [`crate::incr::CheckSession`] keeps alive
/// across re-checks: the scope's FEC partition and, per class, the lazily
/// enumerated (and then memoized) path set.
///
/// The partition and paths are pure functions of `(net, scope, controls,
/// refine_limits)` — never of the ACL configurations — so replaying them
/// under a different before/after pair is exact, not approximate. The
/// `covers` memo *is* keyed by ACL content (the exact pair diffed), which
/// keeps it equally exact: a lookup only ever replays the diff of the very
/// ACLs being preprocessed.
pub(crate) struct SessionMemo {
    /// `derive_classes` output, computed once per session.
    pub(crate) classes: Vec<jinjing_acl::atoms::AtomClass>,
    /// `paths[i]` memoizes `net.all_paths_for_class(scope, classes[i])`;
    /// filled on first use (a class disjoint from every cover so far has
    /// never needed its paths).
    pub(crate) paths: Vec<std::sync::Mutex<Option<Arc<Vec<Path>>>>>,
    /// Per-slot `AclDiff` memo (one entry per slot: the last pair seen).
    /// A re-check stream — and, above all, a plan search probing many
    /// subsets of the same step set — diffs the same `(before, after)`
    /// pair at a slot over and over; this collapses those to one compute.
    covers: std::sync::Mutex<HashMap<Slot, CoverEntry>>,
}

impl SessionMemo {
    /// Derive the FEC partition and empty path/cover memos.
    pub(crate) fn build(
        net: &Network,
        scope: &Scope,
        controls: &[ResolvedControl],
        limits: RefineLimits,
    ) -> Result<SessionMemo, ClassExplosion> {
        let classes = derive_classes(net, scope, controls, limits)?;
        let paths = classes
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        Ok(SessionMemo {
            classes,
            paths,
            covers: std::sync::Mutex::new(HashMap::new()),
        })
    }

    /// The differential of `(b, a)` at `slot`, replayed from the memo when
    /// the exact pair was diffed before; `rebuilds` counts actual computes.
    fn diff_for(&self, slot: Slot, b: &Acl, a: &Acl, rebuilds: &mut usize) -> Arc<AclDiff> {
        let mut map = self
            .covers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = map.get(&slot) {
            if &e.before == b && &e.after == a {
                return Arc::clone(&e.diff);
            }
        }
        *rebuilds += 1;
        let diff = Arc::new(AclDiff::compute(b, a));
        map.insert(
            slot,
            CoverEntry {
                before: b.clone(),
                after: a.clone(),
                diff: Arc::clone(&diff),
            },
        );
        diff
    }

    /// Paths for class `i`, enumerating and memoizing on first use.
    pub(crate) fn paths_for(&self, net: &Network, scope: &Scope, i: usize) -> Arc<Vec<Path>> {
        let mut slot = self.paths[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*slot {
            Some(p) => Arc::clone(p),
            None => {
                let p = Arc::new(net.all_paths_for_class(scope, &self.classes[i].set));
                *slot = Some(Arc::clone(&p));
                p
            }
        }
    }
}

/// The scope's forwarding-equivalence partition: traffic universe entering
/// the scope, refined by the forwarding predicates plus the `control`
/// regions (so classes are control-uniform). Deterministic — the session
/// memo and the cold path call this same function.
pub(crate) fn derive_classes(
    net: &Network,
    scope: &Scope,
    controls: &[ResolvedControl],
    limits: RefineLimits,
) -> Result<Vec<jinjing_acl::atoms::AtomClass>, ClassExplosion> {
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(scope) {
        universe = universe.union(&t);
    }
    let mut preds: Vec<PacketSet> = net
        .scope_predicates(scope)
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    preds.extend(control_regions(controls));
    let preds = jinjing_acl::atoms::dedupe_predicates(preds);
    refine(&universe, &preds, limits)
}

/// The body shared by [`check_configs`] (cold, `session: None`) and
/// [`crate::incr::CheckSession::recheck`] (warm, `session: Some`). The two
/// paths run the same preprocessing, the same Theorem 4.1 class filter,
/// the same two-stage queries and the same deterministic fold; a session
/// merely *replays* memoized FECs/paths and re-uses the persistent query
/// cache, so the returned [`CheckReport`] is byte-identical either way.
pub(crate) fn check_inner(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    cfg: &CheckConfig,
    session: Option<&SessionMemo>,
) -> Result<(CheckReport, IncrStats), CheckError> {
    let total_rules = before.total_rules() + after.total_rules();
    let _check_span = cfg.obs.span("check");
    let sp = cfg.obs.span("check.preprocess");
    let (pairs, cover, encoded_rules, cover_rebuilds) =
        preprocess(before, after, controls, cfg.differential, session);
    let t_preprocess = sp.finish();
    cfg.obs.counter_add("check.runs", 1);
    // Session-only ledger: how many per-slot diffs pass 1 actually had to
    // compute (misses of the session's cover memo). Cold runs never emit
    // it, keeping cold obs snapshots free of `incr`-family counters.
    if session.is_some() {
        cfg.obs
            .counter_add("incr.cover_rebuilds", cover_rebuilds as u64);
    }
    cfg.obs
        .histogram_record("check.encoded_rules", encoded_rules as u64);
    let mut report = CheckReport {
        outcome: CheckOutcome::Consistent,
        fec_count: 0,
        paths_checked: 0,
        solver_stats: SolverStats::default(),
        encoded_rules,
        total_rules,
        t_preprocess,
        t_refine: Default::default(),
        t_paths: Default::default(),
        t_solve: Default::default(),
        violation_pair: None,
    };
    // Fast path: nothing changed and nothing is controlled.
    if cfg.differential && cover.is_empty() {
        cfg.obs.event(
            jinjing_obs::Level::Debug,
            "check.fastpath",
            "empty differential cover; trivially consistent",
        );
        let incr = IncrStats {
            dirty_classes: 0,
            clean_classes: session.map_or(0, |m| m.classes.len()),
            dirty_pairs: 0,
        };
        if session.is_some() {
            record_incr_counters(cfg, incr);
        }
        return Ok((report, incr));
    }

    // FEC partition: replayed from the session memo when warm, derived
    // fresh otherwise — by the *same* deterministic `derive_classes`, so
    // the partitions (and everything downstream) are identical.
    let sp = cfg.obs.span("check.refine");
    let fresh_classes;
    let classes: &[jinjing_acl::atoms::AtomClass] = match session {
        Some(memo) => &memo.classes,
        None => {
            fresh_classes = derive_classes(net, scope, controls, cfg.refine_limits)?;
            &fresh_classes
        }
    };
    report.t_refine = sp.finish();
    report.fec_count = classes.len();
    cfg.obs
        .histogram_record("check.fec_count", classes.len() as u64);

    // Theorem 4.1: classes disjoint from the differential cover meet
    // identical rule subsequences before and after — skip them outright.
    // Under a session these are the *clean* classes of the delta.
    //
    // The shard filter composes after enumeration, so the `usize` in each
    // candidate stays the *global* class index whatever slice this process
    // owns — per-shard verdicts therefore name coordinates every other
    // shard (and the coordinator) agrees on.
    let candidates: Vec<(usize, &jinjing_acl::atoms::AtomClass)> = classes
        .iter()
        .enumerate()
        .filter(|(_, class)| !cfg.differential || class.set.intersects(&cover))
        .filter(|(_, class)| cfg.shard.as_ref().map_or(true, |s| s.owns_class(&class.set)))
        .collect();

    let pool = Pool::new(cfg.threads);

    // Phase A: enumerate paths per candidate (dirty) class — replaying the
    // session's memoized enumeration when warm. Workers time their own
    // lookups; the driver folds the measurements below.
    let enumerated: Vec<(Arc<Vec<Path>>, Duration)> =
        pool.par_map(&candidates, |_, &(gi, class)| {
            let t0 = Instant::now();
            let paths = match session {
                Some(memo) => memo.paths_for(net, scope, gi),
                None => Arc::new(net.all_paths_for_class(scope, &class.set)),
            };
            (paths, t0.elapsed())
        });

    // Phase B: one two-stage solver query per (class, path) pair, in
    // class-major order. Stage 1 is class-independent (and cacheable
    // across FECs sharing an ACL chain); stage 2 pins the witness inside
    // the class. `Cancel` lets workers skip pairs beyond the first
    // violation without ever skipping the minimal violating index.
    struct PairJob<'a> {
        class_idx: usize,
        path_idx: usize,
        verb: Option<ControlVerb>,
        class_set: &'a PacketSet,
    }
    let mut jobs: Vec<PairJob<'_>> = Vec::new();
    for (ci, (_, class)) in candidates.iter().enumerate() {
        let paths = &enumerated[ci].0;
        if paths.is_empty() {
            continue;
        }
        let class_controls = crate::control::ClassControls::new(controls, &class.set);
        for (pi, path) in paths.iter().enumerate() {
            jobs.push(PairJob {
                class_idx: ci,
                path_idx: pi,
                verb: class_controls.verb_for(path),
                class_set: &class.set,
            });
        }
    }

    let incr = IncrStats {
        dirty_classes: candidates.len(),
        clean_classes: classes.len() - candidates.len(),
        dirty_pairs: jobs.len(),
    };
    if session.is_some() {
        record_incr_counters(cfg, incr);
    }

    let region = if cfg.differential { Some(&cover) } else { None };
    // Flight recorder: workers emit onto their own track (`1 + slot`; the
    // serial path uses track 1) so a trace shows per-worker solver
    // timelines. A disabled context makes every call below a no-op.
    let tr = cfg.obs.trace_ctx();
    // The two-stage query for one pair, shared verbatim by the local pool
    // fan-out and the delegate path's single re-solve — which is why a
    // remote verdict materializes into the exact witness a single-process
    // run would have found.
    let solve_pair = |job: &PairJob<'_>, tid: u64| -> (Vec<CachedSolve>, Option<Packet>) {
        let pair_span = tr.span_with(
            tid,
            "check.pair",
            &[("class", job.class_idx as u64), ("path", job.path_idx as u64)],
        );
        let path = &enumerated[job.class_idx].0[job.path_idx];
        let chain: Vec<(&Acl, &Acl)> = path
            .slots
            .iter()
            .filter_map(|s| pairs.get(s))
            .map(|p| (&p.before, &p.after))
            .collect();
        let mut queries: Vec<CachedSolve> = Vec::new();
        // Stage 1: ∃h (∈ cover): desired chain ≠ updated chain. The
        // class constraint is deliberately absent so the query is shared
        // verbatim by every FEC routed through the same ACL chain.
        let s1_span = tr.span_with(tid, "solver.query", &[("stage", 1)]);
        let stage1 = cached_query(cfg, &chain, job.verb, region, None);
        stage1.stats.trace_query(s1_span, stage1.vars, stage1.clauses);
        let witness = match stage1.result {
            SolveResult::Unsat => {
                // No disagreeing packet anywhere in the cover ⇒ none in
                // class ∩ cover either.
                queries.push(stage1);
                None
            }
            SolveResult::Sat => {
                let m = stage1.model.expect("Sat query stores its model");
                queries.push(stage1);
                if job.class_set.contains(&m) {
                    // The shared model already lies in this class: it is a
                    // witness outright. (Deterministic across cache
                    // on/off because the model itself is cached.)
                    Some(m)
                } else {
                    // Stage 2: re-ask with the witness pinned inside the
                    // class. Never cached (class sets rarely recur).
                    let s2_span = tr.span_with(tid, "solver.query", &[("stage", 2)]);
                    let s2 = run_query(&chain, job.verb, cfg.encoding, region, Some(job.class_set));
                    s2.stats.trace_query(s2_span, s2.vars, s2.clauses);
                    let w = match s2.result {
                        SolveResult::Sat => Some(s2.model.expect("Sat query stores its model")),
                        SolveResult::Unsat => None,
                    };
                    queries.push(s2);
                    w
                }
            }
        };
        drop(pair_span);
        (queries, witness)
    };

    // Delegate path: one remote fan-out call stands in for the whole pool
    // dispatch. The verdict comes back as a *global* (class, path)
    // coordinate; everything observable about the run — the witness, the
    // violation, the verdict rendering — is still produced by this
    // process's own deterministic machinery.
    if let Some(delegate) = &cfg.delegate {
        let sp = cfg.obs.span("check.fanout");
        let verdict = delegate.check(before, after).map_err(CheckError::Shard)?;
        sp.finish();
        match verdict {
            None => {
                for (paths, t) in &enumerated {
                    report.t_paths += *t;
                    report.paths_checked += paths.len();
                }
                cfg.obs
                    .event(jinjing_obs::Level::Info, "check.verdict", "consistent");
                return Ok((report, incr));
            }
            Some((gi, pi)) => {
                let i = jobs
                    .iter()
                    .position(|j| candidates[j.class_idx].0 == gi && j.path_idx == pi)
                    .ok_or_else(|| {
                        CheckError::Shard(format!(
                            "remote verdict names unknown pair (class {gi}, path {pi})"
                        ))
                    })?;
                let t0 = Instant::now();
                let (queries, witness) = solve_pair(&jobs[i], 1);
                for q in &queries {
                    report.solver_stats.merge(&q.stats);
                    q.stats.record_query(&cfg.obs, q.vars, q.clauses);
                }
                report.t_solve = t0.elapsed();
                let packet = witness.ok_or_else(|| {
                    CheckError::Shard(format!(
                        "remote verdict (class {gi}, path {pi}) did not reproduce locally"
                    ))
                })?;
                for (paths, t) in enumerated.iter().take(jobs[i].class_idx + 1) {
                    report.t_paths += *t;
                    report.paths_checked += paths.len();
                }
                let paths = &enumerated[jobs[i].class_idx].0;
                let violation = locate_violation(before, after, controls, paths, &packet)
                    .expect("solver model must correspond to a concrete violation");
                cfg.obs.event(
                    jinjing_obs::Level::Info,
                    "check.verdict",
                    &format!("inconsistent: witness {}", violation.packet),
                );
                report.violation_pair = Some((gi, pi));
                report.outcome = CheckOutcome::Inconsistent(violation);
                return Ok((report, incr));
            }
        }
    }

    let cancel = Cancel::new();
    let results = pool.par_map_cancel(&jobs, &cancel, |i, job| {
        let t0 = Instant::now();
        let tid = 1 + jinjing_par::current_worker().unwrap_or(0) as u64;
        let (queries, witness) = solve_pair(job, tid);
        if witness.is_some() {
            cancel.cut(i);
        }
        PairResult {
            queries,
            t_solve: t0.elapsed(),
            witness,
        }
    });

    // Deterministic fold, in class-major pair order, stopping at the
    // first violation — exactly what the serial loop observed. Durations
    // and span aggregates are derived from the same folded measurements,
    // so the report and the span tree cannot disagree.
    let mut t_solve = Duration::ZERO;
    let mut folded_queries = 0u64;
    let mut violation_at: Option<(usize, Packet)> = None;
    for (i, slot) in results.iter().enumerate() {
        let res = slot
            .as_ref()
            .expect("pairs at or before the first violation are never skipped");
        for q in &res.queries {
            report.solver_stats.merge(&q.stats);
            q.stats.record_query(&cfg.obs, q.vars, q.clauses);
            folded_queries += 1;
        }
        t_solve += res.t_solve;
        if let Some(p) = res.witness {
            violation_at = Some((i, p));
            break;
        }
    }
    // Classes the serial loop would have entered: all candidates up to and
    // including the violating pair's class (every candidate otherwise).
    let folded_classes = match violation_at {
        Some((i, _)) => jobs[i].class_idx + 1,
        None => candidates.len(),
    };
    let mut t_paths = Duration::ZERO;
    for (paths, t) in enumerated.iter().take(folded_classes) {
        t_paths += *t;
        report.paths_checked += paths.len();
    }
    if folded_classes > 0 {
        cfg.obs
            .record_span("check.paths", folded_classes as u64, t_paths);
    }
    if folded_queries > 0 {
        cfg.obs.record_span("check.solve", folded_queries, t_solve);
    }
    report.t_paths = t_paths;
    report.t_solve = t_solve;

    if let Some((i, packet)) = violation_at {
        let paths = &enumerated[jobs[i].class_idx].0;
        let violation = locate_violation(before, after, controls, paths, &packet)
            .expect("solver model must correspond to a concrete violation");
        cfg.obs.event(
            jinjing_obs::Level::Info,
            "check.verdict",
            &format!("inconsistent: witness {}", violation.packet),
        );
        report.violation_pair = Some((candidates[jobs[i].class_idx].0, jobs[i].path_idx));
        report.outcome = CheckOutcome::Inconsistent(violation);
        return Ok((report, incr));
    }
    cfg.obs
        .event(jinjing_obs::Level::Info, "check.verdict", "consistent");
    Ok((report, incr))
}

/// Session-only counters: the incremental ledger in the obs stream. A cold
/// run never emits these, so a cold snapshot and a warm one differ by
/// exactly this family (plus cache hit/miss counts) — the shape contract
/// `tests/incr_oracle.rs` pins.
fn record_incr_counters(cfg: &CheckConfig, incr: IncrStats) {
    cfg.obs
        .counter_add("check.incr_dirty", incr.dirty_classes as u64);
    cfg.obs
        .counter_add("check.incr_clean", incr.clean_classes as u64);
    cfg.obs
        .counter_add("check.incr_dirty_pairs", incr.dirty_pairs as u64);
}

/// Per-`(class, path)` worker result.
struct PairResult {
    /// Every solver query executed (or replayed from cache), in order.
    queries: Vec<CachedSolve>,
    /// Worker-measured wall clock for this pair's solving.
    t_solve: Duration,
    /// Violating packet, if the pair is inconsistent.
    witness: Option<Packet>,
}

/// Run one decision-model comparison through the cache (when enabled),
/// bumping the `check.cache_hit` / `check.cache_miss` counters. A cache
/// miss lands on the warm solver layer (when enabled): the family for
/// this chain is built once, canonically, and every later miss on the
/// same key replays its memoized first solve instead of rebuilding the
/// circuit (`check.warm_hit` / `check.warm_miss`). Because the cache and
/// the warm layer key by the same dimension-free [`crate::qcache::QueryKey`]
/// material, the answer is identical wherever it came from.
fn cached_query(
    cfg: &CheckConfig,
    chain: &[(&Acl, &Acl)],
    verb: Option<ControlVerb>,
    region: Option<&PacketSet>,
    class_set: Option<&PacketSet>,
) -> CachedSolve {
    let solve = || match (&cfg.warm, class_set) {
        (Some(warm), None) => {
            let (v, warmed) = warm.query(chain, verb, cfg.encoding, region);
            cfg.obs.counter_add(
                if warmed {
                    "check.warm_hit"
                } else {
                    "check.warm_miss"
                },
                1,
            );
            v
        }
        _ => run_query(chain, verb, cfg.encoding, region, class_set),
    };
    match &cfg.cache {
        Some(cache) => {
            let key = cache.key(chain, verb, cfg.encoding, region);
            let (v, hit) = cache.get_or_solve(key, solve);
            cfg.obs.counter_add(
                if hit {
                    "check.cache_hit"
                } else {
                    "check.cache_miss"
                },
                1,
            );
            v
        }
        None => solve(),
    }
}

/// Build and solve one Eq. 3 query: does the desired decision of the
/// `chain` (rewritten by `verb`) disagree with the updated decision for
/// some packet in `region ∩ class_set`?
///
/// Uses a fresh [`CircuitBuilder`] *without* an obs sink: the caller folds
/// the returned stats in deterministic order and replays them into the
/// collector, so speculative parallel work never pollutes the metrics.
fn run_query(
    chain: &[(&Acl, &Acl)],
    verb: Option<ControlVerb>,
    encoding: Encoding,
    region: Option<&PacketSet>,
    class_set: Option<&PacketSet>,
) -> CachedSolve {
    let mut builder = CircuitBuilder::new();
    let h = HeaderVars::new(&mut builder);
    let mut c_before = Vec::with_capacity(chain.len());
    let mut c_after = Vec::with_capacity(chain.len());
    for (b, a) in chain {
        c_before.push(encode(&mut builder, &h, b, encoding));
        c_after.push(encode(&mut builder, &h, a, encoding));
    }
    let cp = builder.and(&c_before);
    let cp2 = builder.and(&c_after);
    // Desired side: the applicable control rewrites cp.
    let desired = match verb {
        Some(ControlVerb::Isolate) => builder.f(),
        Some(ControlVerb::Open) => builder.t(),
        Some(ControlVerb::Maintain) | None => cp,
    };
    let eq = builder.iff(desired, cp2);
    builder.assert(!eq);
    if let Some(set) = region {
        let in_region = h.in_set(&mut builder, set);
        builder.assert(in_region);
    }
    if let Some(set) = class_set {
        let in_class = h.in_set(&mut builder, set);
        builder.assert(in_class);
    }
    let result = builder.solve();
    let model = (result == SolveResult::Sat).then(|| h.decode(&builder));
    CachedSolve {
        result,
        model,
        stats: builder.solver().stats(),
        vars: builder.solver().num_vars(),
        clauses: builder.solver().num_clauses(),
    }
}

/// Evaluate a concrete packet against every path to find the violated one.
fn locate_violation(
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    paths: &[Path],
    packet: &Packet,
) -> Option<Violation> {
    for path in paths {
        if !path.carried.contains(packet) {
            continue;
        }
        let original = before.path_permits(path, packet);
        let desired = desired_decision(controls, path, &PacketSet::singleton(packet), original);
        let actual = after.path_permits(path, packet);
        if desired != actual {
            return Some(Violation {
                packet: *packet,
                path: path.clone(),
                desired,
                actual,
            });
        }
    }
    None
}

/// The §9 fallback: verify **per-ACL equivalence** instead of per-path
/// reachability ("we can directly verify all traffic, i.e. 0.0.0.0/0, on
/// each ACL individually, which is a sufficient condition (but much
/// stronger) for the reachability consistency").
///
/// No forwarding classes, paths, routing or traffic data are consulted —
/// this works when the traffic matrix / FECs are unknown. It never misses
/// a real inconsistency, but it *can* report false positives: an update
/// that moves a deny between two slots of the same path changes both ACLs
/// while leaving every path decision intact. Control statements cannot be
/// expressed at this granularity and are rejected.
pub fn check_per_acl(before: &AclConfig, after: &AclConfig, cfg: &CheckConfig) -> CheckReport {
    let total_rules = before.total_rules() + after.total_rules();
    let _check_span = cfg.obs.span("check");
    let sp = cfg.obs.span("check.preprocess");
    let (pairs, cover, encoded_rules, _) = preprocess(before, after, &[], cfg.differential, None);
    let t_preprocess = sp.finish();
    let mut report = CheckReport {
        outcome: CheckOutcome::Consistent,
        fec_count: 0,
        paths_checked: 0,
        solver_stats: SolverStats::default(),
        encoded_rules,
        total_rules,
        t_preprocess,
        t_refine: Default::default(),
        t_paths: Default::default(),
        t_solve: Default::default(),
        violation_pair: None,
    };
    if cfg.differential && cover.is_empty() {
        return report;
    }
    let mut slots: Vec<Slot> = pairs.keys().copied().collect();
    slots.sort();
    let pool = Pool::new(cfg.threads);
    let cancel = Cancel::new();
    let region = if cfg.differential { Some(&cover) } else { None };
    // One per-slot equivalence query per work item; identical ACL
    // templates on different slots share a cache entry.
    let tr = cfg.obs.trace_ctx();
    let results = pool.par_map_cancel(&slots, &cancel, |i, slot| {
        let pair = &pairs[slot];
        let t0 = Instant::now();
        let tid = 1 + jinjing_par::current_worker().unwrap_or(0) as u64;
        let q_span = tr.span_with(tid, "solver.query", &[("slot", i as u64)]);
        let chain = [(&pair.before, &pair.after)];
        let solved = cached_query(cfg, &chain, None, region, None);
        solved.stats.trace_query(q_span, solved.vars, solved.clauses);
        if solved.result == SolveResult::Sat {
            cancel.cut(i);
        }
        (solved, t0.elapsed())
    });
    // Deterministic fold in slot order, stopping at the first violating
    // slot — the serial semantics.
    let mut t_solve = Duration::ZERO;
    let mut folded = 0u64;
    for (i, res) in results.iter().enumerate() {
        let (solved, elapsed) = res
            .as_ref()
            .expect("slots at or before the first violation are never skipped");
        report.solver_stats.merge(&solved.stats);
        solved
            .stats
            .record_query(&cfg.obs, solved.vars, solved.clauses);
        t_solve += *elapsed;
        folded += 1;
        report.paths_checked += 1;
        if solved.result == SolveResult::Sat {
            let packet = solved.model.expect("Sat query stores its model");
            let desired = pairs[&slots[i]].before.permits(&packet);
            report.outcome = CheckOutcome::Inconsistent(Violation {
                packet,
                // A synthetic single-slot "path" naming the offending ACL.
                path: Path {
                    slots: vec![slots[i]],
                    carried: PacketSet::full(),
                },
                desired,
                actual: !desired,
            });
            break;
        }
    }
    if folded > 0 {
        cfg.obs.record_span("check.solve", folded, t_solve);
    }
    report.t_solve = t_solve;
    report
}

/// Exact reference checker: compares desired and updated permit sets path
/// by path using the packet-set algebra only. Returns the first violation.
pub fn check_exact(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
) -> CheckOutcome {
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(scope) {
        universe = universe.union(&t);
    }
    let paths = net.all_paths_for_class(scope, &universe);
    for path in &paths {
        let relevant = path.carried.clone();
        let original = before.path_permit_set(path);
        let desired = desired_permit_set(controls, path, &original);
        let actual = after.path_permit_set(path);
        // Violations: packets carried by the path where desired ≠ actual.
        let wrong = desired
            .subtract(&actual)
            .union(&actual.subtract(&desired))
            .intersect(&relevant);
        if let Some(packet) = wrong.sample() {
            let desired_dec = desired.contains(&packet);
            return CheckOutcome::Inconsistent(Violation {
                packet,
                path: path.clone(),
                desired: desired_dec,
                actual: !desired_dec,
            });
        }
    }
    CheckOutcome::Consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    fn task_for(f: &Figure1, after: AclConfig) -> Task {
        Task {
            scope: f.scope(),
            allow: Vec::new(),
            before: f.config.clone(),
            after,
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Check,
        }
    }

    fn all_configs() -> Vec<CheckConfig> {
        let mut out = Vec::new();
        for differential in [false, true] {
            for encoding in [Encoding::Sequential, Encoding::Tree] {
                out.push(CheckConfig {
                    differential,
                    encoding,
                    ..CheckConfig::default()
                });
            }
        }
        out
    }

    #[test]
    fn identical_configs_are_consistent() {
        let f = Figure1::new();
        let task = task_for(&f, f.config.clone());
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            assert!(r.outcome.is_consistent(), "{cfg:?}");
        }
    }

    #[test]
    fn running_example_update_is_inconsistent() {
        let f = Figure1::new();
        let task = task_for(&f, f.bad_update());
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            match &r.outcome {
                CheckOutcome::Inconsistent(v) => {
                    // The witness must be traffic 1 or 2 on the direct path
                    // p0 (the only decisions that changed).
                    let top = v.packet.dip >> 24;
                    assert!(top == 1 || top == 2, "witness {0}", v.packet);
                    assert_eq!(v.path.slots.len(), 4, "violation on p0");
                    assert!(v.desired, "was permitted");
                    assert!(!v.actual, "now denied");
                }
                CheckOutcome::Consistent => panic!("must be inconsistent ({cfg:?})"),
            }
        }
    }

    #[test]
    fn solver_and_exact_checker_agree() {
        let f = Figure1::new();
        for after in [f.config.clone(), f.bad_update()] {
            let task = task_for(&f, after.clone());
            let solver_verdict = check(&f.net, &task, &CheckConfig::default())
                .unwrap()
                .outcome
                .is_consistent();
            let exact_verdict =
                check_exact(&f.net, &f.scope(), &f.config, &after, &[]).is_consistent();
            assert_eq!(solver_verdict, exact_verdict);
        }
    }

    #[test]
    fn equivalent_rewrite_is_consistent() {
        // Replacing D2's ACL with a semantically equal one must pass.
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(
            f.slot("D2"),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("2.0.0.0/8") // reordered
                .deny_dst("1.0.0.0/8")
                .permit_dst("3.0.0.0/8") // redundant
                .build(),
        );
        let task = task_for(&f, after);
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            assert!(r.outcome.is_consistent(), "{cfg:?}");
        }
    }

    #[test]
    fn differential_reduces_encoded_rules() {
        let f = Figure1::new();
        // Add a pile of irrelevant rules that the update never touches.
        let mut before = f.config.clone();
        let mut padded = jinjing_acl::AclBuilder::default_permit();
        for i in 0..20 {
            padded = padded.deny_dst(&format!("200.{i}.0.0/16"));
        }
        padded = padded.deny_dst("6.0.0.0/8");
        before.set(f.slot("A1"), padded.build());
        let mut after = before.clone();
        after.set(f.slot("D2"), jinjing_acl::Acl::permit_all());

        let base = CheckConfig {
            differential: false,
            ..CheckConfig::default()
        };
        let opt = CheckConfig::default();
        let r_base = check_configs(&f.net, &f.scope(), &before, &after, &[], &base).unwrap();
        let r_opt = check_configs(&f.net, &f.scope(), &before, &after, &[], &opt).unwrap();
        assert_eq!(
            r_base.outcome.is_consistent(),
            r_opt.outcome.is_consistent()
        );
        assert!(
            r_opt.encoded_rules * 4 < r_base.encoded_rules,
            "reduction should drop most rules: {} vs {}",
            r_opt.encoded_rules,
            r_base.encoded_rules
        );
    }

    #[test]
    fn control_isolate_flags_unchanged_config() {
        use std::collections::HashSet;
        // Desired reachability changed (isolate traffic 3 on A1→D3), but the
        // config did not: check must report inconsistency.
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Isolate,
            region: f.traffic(3),
        }];
        let mut task = task_for(&f, f.config.clone());
        task.controls = controls.clone();
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            match &r.outcome {
                CheckOutcome::Inconsistent(v) => {
                    assert_eq!(v.packet.dip >> 24, 3);
                    assert!(!v.desired && v.actual);
                }
                CheckOutcome::Consistent => panic!("isolate unmet ({cfg:?})"),
            }
            let exact = check_exact(&f.net, &f.scope(), &f.config, &f.config, &controls);
            assert!(!exact.is_consistent());
        }
    }

    #[test]
    fn control_open_satisfied_by_matching_update() {
        use std::collections::HashSet;
        // Open traffic 6 from A1 to D3; update A1 to permit 6/8 again.
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Open,
            region: f.traffic(6),
        }];
        let mut after = f.config.clone();
        after.set(f.slot("A1"), jinjing_acl::Acl::permit_all());
        let mut task = task_for(&f, after);
        task.controls = controls;
        let r = check(&f.net, &task, &CheckConfig::default()).unwrap();
        assert!(r.outcome.is_consistent(), "{:?}", r.outcome);
    }

    #[test]
    fn report_counts_are_populated() {
        let f = Figure1::new();
        let task = task_for(&f, f.bad_update());
        let r = check(
            &f.net,
            &task,
            &CheckConfig {
                differential: false,
                ..CheckConfig::default()
            },
        )
        .unwrap();
        assert!(r.fec_count >= 1);
        assert!(r.paths_checked >= 1);
        assert!(r.total_rules > 0);
    }
}

#[cfg(test)]
mod per_acl_tests {
    use super::*;
    use crate::figure1::Figure1;

    #[test]
    fn per_acl_accepts_equivalent_rewrites() {
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(
            f.slot("D2"),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("2.0.0.0/8")
                .deny_dst("1.0.0.0/8")
                .build(),
        );
        let r = check_per_acl(&f.config, &after, &CheckConfig::default());
        assert!(r.outcome.is_consistent());
    }

    #[test]
    fn per_acl_catches_real_changes() {
        let f = Figure1::new();
        let r = check_per_acl(&f.config, &f.bad_update(), &CheckConfig::default());
        assert!(!r.outcome.is_consistent());
    }

    #[test]
    fn per_acl_is_stricter_than_per_path() {
        // §9: moving a deny between two slots of the same path is a false
        // positive for the per-ACL fallback. Traffic 7's only path crosses
        // both A3-out and C1-in; moving the deny from C1 to A3 preserves
        // reachability (per-path consistent) but changes both ACLs.
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(f.slot("C1"), jinjing_acl::Acl::permit_all());
        after.set(
            jinjing_net::Slot::egress(f.iface("A3")),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("7.0.0.0/8")
                .build(),
        );
        let per_path = check_exact(&f.net, &f.scope(), &f.config, &after, &[]);
        assert!(per_path.is_consistent(), "{per_path:?}");
        let per_acl = check_per_acl(&f.config, &after, &CheckConfig::default());
        assert!(
            !per_acl.outcome.is_consistent(),
            "the fallback must (conservatively) flag this"
        );
    }

    #[test]
    fn per_acl_identical_configs_trivially_consistent() {
        let f = Figure1::new();
        let r = check_per_acl(&f.config, &f.config, &CheckConfig::default());
        assert!(r.outcome.is_consistent());
        assert_eq!(r.paths_checked, 0, "empty diff short-circuits");
    }

    /// Canonical rendering of a report minus wall-clock (fuzz comparator).
    fn canon(r: &CheckReport) -> String {
        format!(
            "{:?}|{}|{}|{:?}|{}|{}",
            r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
        )
    }

    /// Tiny xorshift64* PRNG: the fuzz below must run under bare rustc with
    /// no registry access, so no proptest/rand here.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A small random ACL: 0–4 deny/permit rules over /6–/10 dst prefixes.
    fn random_acl(rng: &mut XorShift) -> Acl {
        let mut rules = Vec::new();
        for _ in 0..rng.below(5) {
            let len = 6 + rng.below(5) as u32;
            let addr = (rng.next() as u32) & (u32::MAX << (32 - len));
            let action = if rng.below(2) == 0 {
                jinjing_acl::Action::Deny
            } else {
                jinjing_acl::Action::Permit
            };
            rules.push(jinjing_acl::Rule::new(
                action,
                jinjing_acl::MatchSpec::dst(jinjing_acl::IpPrefix::new(addr, len)),
            ));
        }
        Acl::new(rules, jinjing_acl::Action::Permit)
    }

    /// Fuzz the cache against ground truth: for random before/after config
    /// pairs, `check_per_acl` with a shared cache (reused across cases, so
    /// cross-case hits happen), with a *degenerate* fingerprint (every key
    /// hashes alike — the collision path must fall back to full structural
    /// equality), and with no cache at all must produce identical reports.
    #[test]
    fn fuzz_cached_and_uncached_per_acl_agree() {
        let f = Figure1::new();
        let slots: Vec<jinjing_net::Slot> = f.config.slots();
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let shared = std::sync::Arc::new(QueryCache::new());
        let colliding = std::sync::Arc::new(QueryCache::with_fingerprint(|_| 0));
        for case in 0..40 {
            let mut before = AclConfig::new();
            let mut after = AclConfig::new();
            for &slot in &slots {
                if rng.below(2) == 0 {
                    before.set(slot, random_acl(&mut rng));
                }
                if rng.below(2) == 0 {
                    after.set(slot, random_acl(&mut rng));
                }
            }
            let run = |cache: Option<std::sync::Arc<QueryCache>>| {
                let cfg = CheckConfig {
                    cache,
                    ..CheckConfig::default()
                };
                canon(&check_per_acl(&before, &after, &cfg))
            };
            let uncached = run(None);
            assert_eq!(
                uncached,
                run(Some(std::sync::Arc::clone(&shared))),
                "case {case}: shared cache diverged"
            );
            assert_eq!(
                uncached,
                run(Some(std::sync::Arc::clone(&colliding))),
                "case {case}: colliding-fingerprint cache diverged"
            );
        }
        assert!(
            !shared.is_empty(),
            "the fuzz must actually populate the shared cache"
        );
    }

    /// Same fuzz for the full path-sensitive checker on Figure 1: random
    /// updates to the running-example network, cached (shared + colliding)
    /// vs uncached, across serial and parallel execution.
    #[test]
    fn fuzz_cached_and_uncached_check_agree() {
        let f = Figure1::new();
        let slots: Vec<jinjing_net::Slot> = f.config.slots();
        let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
        let shared = std::sync::Arc::new(QueryCache::new());
        let colliding = std::sync::Arc::new(QueryCache::with_fingerprint(|_| 0));
        for case in 0..12 {
            let mut after = f.config.clone();
            for &slot in &slots {
                if rng.below(3) == 0 {
                    after.set(slot, random_acl(&mut rng));
                }
            }
            let task = Task {
                scope: f.scope(),
                allow: Vec::new(),
                before: f.config.clone(),
                after,
                modified: Vec::new(),
                controls: Vec::new(),
                command: jinjing_lai::Command::Check,
            };
            let run = |cache: Option<std::sync::Arc<QueryCache>>, threads: usize| {
                let cfg = CheckConfig {
                    cache,
                    threads,
                    ..CheckConfig::default()
                };
                canon(&check(&f.net, &task, &cfg).expect("figure 1 never explodes"))
            };
            let uncached = run(None, 1);
            assert_eq!(
                uncached,
                run(Some(std::sync::Arc::clone(&shared)), 2),
                "case {case}: shared cache (parallel) diverged"
            );
            assert_eq!(
                uncached,
                run(Some(std::sync::Arc::clone(&colliding)), 1),
                "case {case}: colliding-fingerprint cache diverged"
            );
        }
        assert!(!shared.is_empty());
    }
}
