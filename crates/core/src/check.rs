//! The **check** primitive (§4.1, Algorithm 1).
//!
//! Verifies that an updated configuration `L'_Ω` achieves the desired
//! reachability: for every forwarding equivalence class entering the scope
//! and every path that class can take, the updated path decision must equal
//! the desired one (the original decision, transformed by any `control`
//! statements). The per-class query is Eq. 3, solved by the CDCL engine
//! after circuit compilation.
//!
//! Optimizations (both on by default, both switchable for the Figure 4a
//! ablation):
//!
//! - **Differential rules** (Definitions 4.1/4.2, Theorem 4.1): each ACL is
//!   reduced to the rules related to the update's differential rules, and
//!   the solver is additionally confined to the differential packet cover
//!   `H` (packets outside `H` meet identical rule subsequences before and
//!   after, so they cannot witness an inconsistency; `control`ed regions
//!   join the cover per §6).
//! - **Tree decision-model encoding** (§4.1 "ACL decision model
//!   optimization"): balanced tournament-tree circuits instead of the
//!   sequential first-match chain.
//!
//! [`check_exact`] is the set-algebra reference oracle: slower but purely
//! exact, used to cross-validate the solver path in tests.

use crate::control::{control_regions, desired_decision, desired_permit_set, ResolvedControl};
use crate::task::Task;
use jinjing_acl::atoms::{refine, ClassExplosion, RefineLimits};
use jinjing_acl::diff::AclDiff;
use jinjing_acl::{Acl, Packet, PacketSet};
use jinjing_lai::ControlVerb;
use jinjing_net::{AclConfig, Network, Path, Scope, Slot};
use jinjing_solver::aclenc::{encode, Encoding};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::lit::Lit;
use jinjing_solver::{CircuitBuilder, HeaderVars, SolverStats};
use std::collections::HashMap;

/// Tunables for check.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Apply the differential-rule reduction (Theorem 4.1).
    pub differential: bool,
    /// Decision-model encoding for the solver circuits.
    pub encoding: Encoding,
    /// Equivalence-class caps.
    pub refine_limits: RefineLimits,
    /// Observability sink: phase spans, solver histograms, events. A fresh
    /// (private) collector by default; the engine shares one per run.
    pub obs: jinjing_obs::Collector,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            differential: true,
            encoding: Encoding::Tree,
            refine_limits: RefineLimits::default(),
            obs: jinjing_obs::Collector::new(),
        }
    }
}

/// One witnessed inconsistency.
#[derive(Debug, Clone)]
pub struct Violation {
    /// A packet whose decision changed.
    pub packet: Packet,
    /// A path on which it changed.
    pub path: Path,
    /// The desired decision on that path.
    pub desired: bool,
    /// The decision the updated configuration actually takes.
    pub actual: bool,
}

/// The verdict.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Desired reachability holds for all classes and paths.
    Consistent,
    /// At least one packet/path pair changed decision.
    Inconsistent(Violation),
}

impl CheckOutcome {
    /// `true` for [`CheckOutcome::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, CheckOutcome::Consistent)
    }
}

/// The result of a check run, with workload metrics.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Verdict.
    pub outcome: CheckOutcome,
    /// Number of forwarding equivalence classes examined.
    pub fec_count: usize,
    /// Total (class, path) pairs encoded.
    pub paths_checked: usize,
    /// Aggregated solver statistics across all per-class queries.
    pub solver_stats: SolverStats,
    /// ACL rules fed to the encoder after (or without) reduction.
    pub encoded_rules: usize,
    /// ACL rules in the original configurations.
    pub total_rules: usize,
    /// Wall-clock split: differential preprocessing.
    pub t_preprocess: std::time::Duration,
    /// Wall-clock split: FEC derivation.
    pub t_refine: std::time::Duration,
    /// Wall-clock split: path enumeration.
    pub t_paths: std::time::Duration,
    /// Wall-clock split: circuit construction + solving.
    pub t_solve: std::time::Duration,
}

/// Per-slot preprocessed encoding inputs.
pub(crate) struct SlotPair {
    pub(crate) before: Acl,
    pub(crate) after: Acl,
}

/// Preprocess the configurations: per-slot diffs are unioned into the
/// *global* `Diff_Ω` (as §4.1 prescribes — "taking the union over all the
/// differential rules gives us a set Diff_Ω"), every slot's before/after
/// ACLs are reduced to the rules related to that global set, and the
/// differential packet cover `H` is assembled.
///
/// Using the global set is what makes the reduction sound across *path
/// conjunctions*: for any packet in `H`, every rule it can match anywhere
/// in the scope overlaps a differential rule, so every slot's reduced
/// decision equals its full decision on `H` — the encoded path models are
/// exact precisely where counterexamples can live.
///
/// Per §6, `isolate`/`open` control regions join both the relatedness test
/// and the cover (their packets can be inconsistent without any ACL edit).
pub(crate) fn preprocess(
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    differential: bool,
) -> (HashMap<Slot, SlotPair>, PacketSet, usize) {
    let mut slots: Vec<Slot> = before.slots();
    for s in after.slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    let mut pairs = HashMap::new();
    let mut encoded_rules = 0usize;
    if !differential {
        for slot in slots {
            let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
            let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
            encoded_rules += b.len() + a.len();
            pairs.insert(
                slot,
                SlotPair {
                    before: b,
                    after: a,
                },
            );
        }
        return (pairs, PacketSet::full(), encoded_rules);
    }
    // Pass 1: global differential rules and their packet cover.
    let mut global_diff: Vec<jinjing_acl::Rule> = Vec::new();
    let mut cover = PacketSet::empty();
    for &slot in &slots {
        let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let d = AclDiff::compute(&b, &a);
        cover = cover.union(&d.cover);
        for r in d.diff {
            if !global_diff.contains(&r) {
                global_diff.push(r);
            }
        }
    }
    // §6: isolate/open regions participate in relatedness and the cover.
    let mut control_sets: Vec<PacketSet> = Vec::new();
    for c in controls {
        if matches!(c.verb, ControlVerb::Isolate | ControlVerb::Open) {
            cover = cover.union(&c.region);
            control_sets.push(c.region.clone());
        }
    }
    // Pass 2: reduce every slot against the global set, via the §5.5
    // search tree over the differential rules.
    let diff_tree =
        jinjing_acl::rtree::RuleTree::build(global_diff.iter().map(|r| r.matches).collect());
    let keep = |rule: &jinjing_acl::Rule| -> bool {
        diff_tree.overlaps_any(&rule.matches)
            || control_sets
                .iter()
                .any(|s| s.intersects(&PacketSet::from_cube(rule.matches.cube())))
    };
    for slot in slots {
        let b = before.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let a = after.get(slot).cloned().unwrap_or_else(Acl::permit_all);
        let rb: Vec<jinjing_acl::Rule> = b.rules().iter().filter(|r| keep(r)).copied().collect();
        let ra: Vec<jinjing_acl::Rule> = a.rules().iter().filter(|r| keep(r)).copied().collect();
        encoded_rules += rb.len() + ra.len();
        pairs.insert(
            slot,
            SlotPair {
                before: Acl::new(rb, b.default_action()),
                after: Acl::new(ra, a.default_action()),
            },
        );
    }
    (pairs, cover, encoded_rules)
}

/// Run check on a resolved task.
pub fn check(net: &Network, task: &Task, cfg: &CheckConfig) -> Result<CheckReport, ClassExplosion> {
    check_configs(
        net,
        &task.scope,
        &task.before,
        &task.after,
        &task.controls,
        cfg,
    )
}

/// Run check on explicit before/after configurations.
pub fn check_configs(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    cfg: &CheckConfig,
) -> Result<CheckReport, ClassExplosion> {
    let total_rules = before.total_rules() + after.total_rules();
    let _check_span = cfg.obs.span("check");
    let sp = cfg.obs.span("check.preprocess");
    let (pairs, cover, encoded_rules) = preprocess(before, after, controls, cfg.differential);
    let t_preprocess = sp.finish();
    cfg.obs.counter_add("check.runs", 1);
    cfg.obs
        .histogram_record("check.encoded_rules", encoded_rules as u64);
    let mut report = CheckReport {
        outcome: CheckOutcome::Consistent,
        fec_count: 0,
        paths_checked: 0,
        solver_stats: SolverStats::default(),
        encoded_rules,
        total_rules,
        t_preprocess,
        t_refine: Default::default(),
        t_paths: Default::default(),
        t_solve: Default::default(),
    };
    // Fast path: nothing changed and nothing is controlled.
    if cfg.differential && cover.is_empty() {
        cfg.obs.event(
            jinjing_obs::Level::Debug,
            "check.fastpath",
            "empty differential cover; trivially consistent",
        );
        return Ok(report);
    }

    // Traffic universe entering the scope.
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(scope) {
        universe = universe.union(&t);
    }

    // Forwarding equivalence classes (control regions join the refinement
    // so classes are control-uniform).
    let mut preds: Vec<PacketSet> = net
        .scope_predicates(scope)
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    preds.extend(control_regions(controls));
    let preds = jinjing_acl::atoms::dedupe_predicates(preds);
    let sp = cfg.obs.span("check.refine");
    let classes = refine(&universe, &preds, cfg.refine_limits)?;
    report.t_refine = sp.finish();
    report.fec_count = classes.len();
    cfg.obs
        .histogram_record("check.fec_count", classes.len() as u64);

    for class in &classes {
        // Theorem 4.1: a class disjoint from the differential cover meets
        // identical rule subsequences before and after — skip it outright.
        if cfg.differential && !class.set.intersects(&cover) {
            continue;
        }
        let sp = cfg.obs.span("check.paths");
        let paths = net.all_paths_for_class(scope, &class.set);
        report.t_paths += sp.finish();
        if paths.is_empty() {
            continue;
        }
        report.paths_checked += paths.len();
        let sp = cfg.obs.span("check.solve");
        let mut builder = CircuitBuilder::new();
        builder.set_obs(cfg.obs.clone());
        let h = HeaderVars::new(&mut builder);
        // Cache slot decision circuits.
        let mut lits_before: HashMap<Slot, Lit> = HashMap::new();
        let mut lits_after: HashMap<Slot, Lit> = HashMap::new();
        let mut disagreements: Vec<Lit> = Vec::new();
        let class_controls = crate::control::ClassControls::new(controls, &class.set);
        for path in &paths {
            let mut c_before: Vec<Lit> = Vec::new();
            let mut c_after: Vec<Lit> = Vec::new();
            for &slot in &path.slots {
                if let Some(pair) = pairs.get(&slot) {
                    let lb = *lits_before
                        .entry(slot)
                        .or_insert_with(|| encode(&mut builder, &h, &pair.before, cfg.encoding));
                    let la = *lits_after
                        .entry(slot)
                        .or_insert_with(|| encode(&mut builder, &h, &pair.after, cfg.encoding));
                    c_before.push(lb);
                    c_after.push(la);
                }
            }
            let cp = builder.and(&c_before);
            let cp2 = builder.and(&c_after);
            // Desired side: the first applicable control rewrites cp.
            let desired = match class_controls.verb_for(path) {
                Some(ControlVerb::Isolate) => builder.f(),
                Some(ControlVerb::Open) => builder.t(),
                Some(ControlVerb::Maintain) | None => cp,
            };
            let eq = builder.iff(desired, cp2);
            disagreements.push(!eq);
        }
        let any = builder.or(&disagreements);
        // Pin the witness inside the class — and, under the differential
        // optimization, inside the cover `H` as well.
        let in_class = h.in_set(&mut builder, &class.set);
        builder.assert(any);
        builder.assert(in_class);
        if cfg.differential {
            let in_cover = h.in_set(&mut builder, &cover);
            builder.assert(in_cover);
        }
        let r = builder.solve();
        report.t_solve += sp.finish();
        report.solver_stats.merge(&builder.solver().stats());
        if r == SolveResult::Sat {
            let packet = h.decode(&builder);
            let violation = locate_violation(before, after, controls, &paths, &packet)
                .expect("solver model must correspond to a concrete violation");
            cfg.obs.event(
                jinjing_obs::Level::Info,
                "check.verdict",
                &format!("inconsistent: witness {}", violation.packet),
            );
            report.outcome = CheckOutcome::Inconsistent(violation);
            return Ok(report);
        }
    }
    cfg.obs
        .event(jinjing_obs::Level::Info, "check.verdict", "consistent");
    Ok(report)
}

/// Evaluate a concrete packet against every path to find the violated one.
fn locate_violation(
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    paths: &[Path],
    packet: &Packet,
) -> Option<Violation> {
    for path in paths {
        if !path.carried.contains(packet) {
            continue;
        }
        let original = before.path_permits(path, packet);
        let desired = desired_decision(controls, path, &PacketSet::singleton(packet), original);
        let actual = after.path_permits(path, packet);
        if desired != actual {
            return Some(Violation {
                packet: *packet,
                path: path.clone(),
                desired,
                actual,
            });
        }
    }
    None
}

/// The §9 fallback: verify **per-ACL equivalence** instead of per-path
/// reachability ("we can directly verify all traffic, i.e. 0.0.0.0/0, on
/// each ACL individually, which is a sufficient condition (but much
/// stronger) for the reachability consistency").
///
/// No forwarding classes, paths, routing or traffic data are consulted —
/// this works when the traffic matrix / FECs are unknown. It never misses
/// a real inconsistency, but it *can* report false positives: an update
/// that moves a deny between two slots of the same path changes both ACLs
/// while leaving every path decision intact. Control statements cannot be
/// expressed at this granularity and are rejected.
pub fn check_per_acl(before: &AclConfig, after: &AclConfig, cfg: &CheckConfig) -> CheckReport {
    let total_rules = before.total_rules() + after.total_rules();
    let _check_span = cfg.obs.span("check");
    let sp = cfg.obs.span("check.preprocess");
    let (pairs, cover, encoded_rules) = preprocess(before, after, &[], cfg.differential);
    let t_preprocess = sp.finish();
    let mut report = CheckReport {
        outcome: CheckOutcome::Consistent,
        fec_count: 0,
        paths_checked: 0,
        solver_stats: SolverStats::default(),
        encoded_rules,
        total_rules,
        t_preprocess,
        t_refine: Default::default(),
        t_paths: Default::default(),
        t_solve: Default::default(),
    };
    if cfg.differential && cover.is_empty() {
        return report;
    }
    let mut slots: Vec<Slot> = pairs.keys().copied().collect();
    slots.sort();
    for slot in slots {
        let pair = &pairs[&slot];
        let sp = cfg.obs.span("check.solve");
        let mut builder = CircuitBuilder::new();
        builder.set_obs(cfg.obs.clone());
        let h = HeaderVars::new(&mut builder);
        let b = encode(&mut builder, &h, &pair.before, cfg.encoding);
        let a = encode(&mut builder, &h, &pair.after, cfg.encoding);
        let eq = builder.iff(b, a);
        builder.assert(!eq);
        if cfg.differential {
            let in_cover = h.in_set(&mut builder, &cover);
            builder.assert(in_cover);
        }
        let r = builder.solve();
        report.t_solve += sp.finish();
        report.solver_stats.merge(&builder.solver().stats());
        report.paths_checked += 1;
        if r == SolveResult::Sat {
            let packet = h.decode(&builder);
            let desired = pair.before.permits(&packet);
            report.outcome = CheckOutcome::Inconsistent(Violation {
                packet,
                // A synthetic single-slot "path" naming the offending ACL.
                path: Path {
                    slots: vec![slot],
                    carried: PacketSet::full(),
                },
                desired,
                actual: !desired,
            });
            return report;
        }
    }
    report
}

/// Exact reference checker: compares desired and updated permit sets path
/// by path using the packet-set algebra only. Returns the first violation.
pub fn check_exact(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
) -> CheckOutcome {
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(scope) {
        universe = universe.union(&t);
    }
    let paths = net.all_paths_for_class(scope, &universe);
    for path in &paths {
        let relevant = path.carried.clone();
        let original = before.path_permit_set(path);
        let desired = desired_permit_set(controls, path, &original);
        let actual = after.path_permit_set(path);
        // Violations: packets carried by the path where desired ≠ actual.
        let wrong = desired
            .subtract(&actual)
            .union(&actual.subtract(&desired))
            .intersect(&relevant);
        if let Some(packet) = wrong.sample() {
            let desired_dec = desired.contains(&packet);
            return CheckOutcome::Inconsistent(Violation {
                packet,
                path: path.clone(),
                desired: desired_dec,
                actual: !desired_dec,
            });
        }
    }
    CheckOutcome::Consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    fn task_for(f: &Figure1, after: AclConfig) -> Task {
        Task {
            scope: f.scope(),
            allow: Vec::new(),
            before: f.config.clone(),
            after,
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Check,
        }
    }

    fn all_configs() -> Vec<CheckConfig> {
        let mut out = Vec::new();
        for differential in [false, true] {
            for encoding in [Encoding::Sequential, Encoding::Tree] {
                out.push(CheckConfig {
                    differential,
                    encoding,
                    ..CheckConfig::default()
                });
            }
        }
        out
    }

    #[test]
    fn identical_configs_are_consistent() {
        let f = Figure1::new();
        let task = task_for(&f, f.config.clone());
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            assert!(r.outcome.is_consistent(), "{cfg:?}");
        }
    }

    #[test]
    fn running_example_update_is_inconsistent() {
        let f = Figure1::new();
        let task = task_for(&f, f.bad_update());
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            match &r.outcome {
                CheckOutcome::Inconsistent(v) => {
                    // The witness must be traffic 1 or 2 on the direct path
                    // p0 (the only decisions that changed).
                    let top = v.packet.dip >> 24;
                    assert!(top == 1 || top == 2, "witness {0}", v.packet);
                    assert_eq!(v.path.slots.len(), 4, "violation on p0");
                    assert!(v.desired, "was permitted");
                    assert!(!v.actual, "now denied");
                }
                CheckOutcome::Consistent => panic!("must be inconsistent ({cfg:?})"),
            }
        }
    }

    #[test]
    fn solver_and_exact_checker_agree() {
        let f = Figure1::new();
        for after in [f.config.clone(), f.bad_update()] {
            let task = task_for(&f, after.clone());
            let solver_verdict = check(&f.net, &task, &CheckConfig::default())
                .unwrap()
                .outcome
                .is_consistent();
            let exact_verdict =
                check_exact(&f.net, &f.scope(), &f.config, &after, &[]).is_consistent();
            assert_eq!(solver_verdict, exact_verdict);
        }
    }

    #[test]
    fn equivalent_rewrite_is_consistent() {
        // Replacing D2's ACL with a semantically equal one must pass.
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(
            f.slot("D2"),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("2.0.0.0/8") // reordered
                .deny_dst("1.0.0.0/8")
                .permit_dst("3.0.0.0/8") // redundant
                .build(),
        );
        let task = task_for(&f, after);
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            assert!(r.outcome.is_consistent(), "{cfg:?}");
        }
    }

    #[test]
    fn differential_reduces_encoded_rules() {
        let f = Figure1::new();
        // Add a pile of irrelevant rules that the update never touches.
        let mut before = f.config.clone();
        let mut padded = jinjing_acl::AclBuilder::default_permit();
        for i in 0..20 {
            padded = padded.deny_dst(&format!("200.{i}.0.0/16"));
        }
        padded = padded.deny_dst("6.0.0.0/8");
        before.set(f.slot("A1"), padded.build());
        let mut after = before.clone();
        after.set(f.slot("D2"), jinjing_acl::Acl::permit_all());

        let base = CheckConfig {
            differential: false,
            ..CheckConfig::default()
        };
        let opt = CheckConfig::default();
        let r_base = check_configs(&f.net, &f.scope(), &before, &after, &[], &base).unwrap();
        let r_opt = check_configs(&f.net, &f.scope(), &before, &after, &[], &opt).unwrap();
        assert_eq!(
            r_base.outcome.is_consistent(),
            r_opt.outcome.is_consistent()
        );
        assert!(
            r_opt.encoded_rules * 4 < r_base.encoded_rules,
            "reduction should drop most rules: {} vs {}",
            r_opt.encoded_rules,
            r_base.encoded_rules
        );
    }

    #[test]
    fn control_isolate_flags_unchanged_config() {
        use std::collections::HashSet;
        // Desired reachability changed (isolate traffic 3 on A1→D3), but the
        // config did not: check must report inconsistency.
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Isolate,
            region: f.traffic(3),
        }];
        let mut task = task_for(&f, f.config.clone());
        task.controls = controls.clone();
        for cfg in all_configs() {
            let r = check(&f.net, &task, &cfg).unwrap();
            match &r.outcome {
                CheckOutcome::Inconsistent(v) => {
                    assert_eq!(v.packet.dip >> 24, 3);
                    assert!(!v.desired && v.actual);
                }
                CheckOutcome::Consistent => panic!("isolate unmet ({cfg:?})"),
            }
            let exact = check_exact(&f.net, &f.scope(), &f.config, &f.config, &controls);
            assert!(!exact.is_consistent());
        }
    }

    #[test]
    fn control_open_satisfied_by_matching_update() {
        use std::collections::HashSet;
        // Open traffic 6 from A1 to D3; update A1 to permit 6/8 again.
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Open,
            region: f.traffic(6),
        }];
        let mut after = f.config.clone();
        after.set(f.slot("A1"), jinjing_acl::Acl::permit_all());
        let mut task = task_for(&f, after);
        task.controls = controls;
        let r = check(&f.net, &task, &CheckConfig::default()).unwrap();
        assert!(r.outcome.is_consistent(), "{:?}", r.outcome);
    }

    #[test]
    fn report_counts_are_populated() {
        let f = Figure1::new();
        let task = task_for(&f, f.bad_update());
        let r = check(
            &f.net,
            &task,
            &CheckConfig {
                differential: false,
                ..CheckConfig::default()
            },
        )
        .unwrap();
        assert!(r.fec_count >= 1);
        assert!(r.paths_checked >= 1);
        assert!(r.total_rules > 0);
    }
}

#[cfg(test)]
mod per_acl_tests {
    use super::*;
    use crate::figure1::Figure1;

    #[test]
    fn per_acl_accepts_equivalent_rewrites() {
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(
            f.slot("D2"),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("2.0.0.0/8")
                .deny_dst("1.0.0.0/8")
                .build(),
        );
        let r = check_per_acl(&f.config, &after, &CheckConfig::default());
        assert!(r.outcome.is_consistent());
    }

    #[test]
    fn per_acl_catches_real_changes() {
        let f = Figure1::new();
        let r = check_per_acl(&f.config, &f.bad_update(), &CheckConfig::default());
        assert!(!r.outcome.is_consistent());
    }

    #[test]
    fn per_acl_is_stricter_than_per_path() {
        // §9: moving a deny between two slots of the same path is a false
        // positive for the per-ACL fallback. Traffic 7's only path crosses
        // both A3-out and C1-in; moving the deny from C1 to A3 preserves
        // reachability (per-path consistent) but changes both ACLs.
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(f.slot("C1"), jinjing_acl::Acl::permit_all());
        after.set(
            jinjing_net::Slot::egress(f.iface("A3")),
            jinjing_acl::AclBuilder::default_permit()
                .deny_dst("7.0.0.0/8")
                .build(),
        );
        let per_path = check_exact(&f.net, &f.scope(), &f.config, &after, &[]);
        assert!(per_path.is_consistent(), "{per_path:?}");
        let per_acl = check_per_acl(&f.config, &after, &CheckConfig::default());
        assert!(
            !per_acl.outcome.is_consistent(),
            "the fallback must (conservatively) flag this"
        );
    }

    #[test]
    fn per_acl_identical_configs_trivially_consistent() {
        let f = Figure1::new();
        let r = check_per_acl(&f.config, &f.config, &CheckConfig::default());
        assert!(r.outcome.is_consistent());
        assert_eq!(r.paths_checked, 0, "empty diff short-circuits");
    }
}
