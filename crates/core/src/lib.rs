#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-core
//!
//! The Jinjing engine: the paper's three primitives over the substrates of
//! `jinjing-acl` (exact packet-set algebra), `jinjing-solver` (CDCL SAT +
//! circuit compilation) and `jinjing-net` (topology/routing/paths).
//!
//! - [`mod@check`] — packet/desired reachability consistency verification
//!   (Algorithm 1), with the differential-rule reduction (Theorem 4.1) and
//!   the tree decision-model encoding as switchable optimizations, plus an
//!   exact set-algebra reference checker used for cross-validation.
//! - [`mod@fix`] — counterexample enumeration, neighborhood expansion (Eq. 6),
//!   per-neighborhood placement solving with `allow` constraints and the
//!   minimal-change objective, fixing-rule emission and final
//!   simplification (§4.2); two engines — the paper's iterative loop and a
//!   batch exact-algebra variant ([`FixStrategy`]).
//! - [`mod@generate`] — AEC derivation (§5.1), AEC-level solving (Eq. 10), DEC
//!   splitting and re-solving (§5.3), the four-step ACL synthesis (§5.4)
//!   and the §5.5 optimizations.
//! - [`control`] — desired-reachability transformation of path decision
//!   models for `isolate` / `open` / `maintain` intents (§6).
//! - [`mod@qcache`] — the cross-query solver cache: identical
//!   decision-model comparisons (same ordered slot ACLs, encoding, verb
//!   and packet region) across paths, FECs and engine phases are solved
//!   once; collision-safe keys (full structural `Eq`, fingerprint-routed
//!   `Hash`) behind a sharded mutex map.
//! - [`mod@warm`] — the warm solver layer: persistent per-scope CDCL
//!   families ([`warm::ScopeSolver`]) that encode each distinct ACL chain
//!   once (keyed by the same dimension-free query keys as the cache,
//!   guarded by fresh selector literals) and answer repeat/class-pinned
//!   queries via memo replay and assumption-scoped `solve_with` instead
//!   of rebuilding — byte-identical to the cold path by construction.
//! - [`mod@incr`] — the incremental re-check engine: a
//!   [`CheckSession`](incr::CheckSession) keeps the FEC partition,
//!   per-class paths and a generation-tagged query cache alive across a
//!   stream of deltas, re-solving only the (class, path) pairs each
//!   delta dirties while staying byte-identical to a cold check.
//! - [`mod@plan`] — safe update sequencing: decompose a base→target diff
//!   into per-device steps, search for an ordering whose every
//!   intermediate state satisfies the intent (session probes + CEGIS
//!   witness pruning), batch provably-commuting steps into certified
//!   waves, or return a deletion-minimal infeasibility core.
//! - [`mod@query`] — the query layer shared by every front end (CLI and
//!   the `jinjing-serve` daemon): run an LAI intent or a watch-session
//!   delta batch and render the result as canonical, byte-stable JSON
//!   ([`query::PlanDocument`], [`query::WatchOutput`]).
//! - [`mod@resolve`] — binding a parsed LAI [`Program`](jinjing_lai::Program)
//!   to a concrete [`Network`](jinjing_net::Network) + current
//!   [`AclConfig`](jinjing_net::AclConfig), producing a [`task::Task`].
//! - [`engine`] — the front door: run a resolved task, producing an
//!   [`engine::Report`] (the "update plan" handed back to the operator).
//! - [`figure1`] — the paper's running-example network (Figure 1), used by
//!   the quickstart example and many tests.

pub mod check;
pub mod control;
pub mod engine;
pub mod figure1;
pub mod fix;
pub mod generate;
pub mod incr;
pub mod plan;
pub mod qcache;
pub mod query;
pub mod resolve;
pub mod task;
pub mod warm;

pub use crate::check::{
    check, check_per_acl, CheckConfig, CheckOutcome, CheckReport, IncrStats, Violation,
};
pub use crate::control::ResolvedControl;
pub use crate::engine::{open_session, run, EngineConfig, Report, ReportKind};
pub use crate::fix::{fix, FixConfig, FixError, FixPhases, FixPlan, FixStrategy, MinimizeSearch};
pub use crate::generate::{generate, GenerateConfig, GenerateError, GenerateReport};
pub use crate::incr::{CheckSession, Delta, DeltaEdit, IncrConfig, RecheckReport};
pub use crate::plan::{
    synthesize, PlanConfig, PlanError, PlanOutcome, PlanStats, PlanStep, RolloutPlan,
    WaveCertificate,
};
pub use crate::qcache::{CachedSolve, QueryCache, QueryKey};
pub use crate::query::{
    open_intent_session, plan_query, recheck_steps, render_rollout_json, run_query, watch_query,
    PlanDocument, PlanEntry, PlanRunOutput, QueryError, RunOutput, WatchOutput, WatchStep,
};
pub use crate::resolve::{resolve, ResolveError};
pub use crate::task::Task;
pub use crate::warm::{ScopeSolver, WarmStats};
pub use jinjing_solver::aclenc::Encoding;
