//! The **warm solver layer**: persistent per-scope CDCL instances.
//!
//! Every Eq. 3 query the cold path runs ([`crate::check`]'s `run_query`)
//! builds a fresh [`CircuitBuilder`], re-encodes the slot ACL chain,
//! solves once and throws the solver away. WAN scopes route many FECs
//! through few distinct chains, so across one check — and especially
//! across an incremental session's re-checks — the same circuit is
//! rebuilt over and over. A [`ScopeSolver`] keeps one persistent solver
//! *family* per distinct query shape instead:
//!
//! - **Families.** A family is keyed by the same dimension-free
//!   [`QueryKey`] the query cache uses (ordered reduced ACL chain ×
//!   verb × encoding × region — never the execution strategy), and holds
//!   a live [`CircuitBuilder`] in which the chain is encoded **once**.
//! - **Canonical first solve.** The family's construction replays the
//!   cold path's construction *instruction for instruction* — same
//!   variable order, same clause order, region asserted at the root — so
//!   its first solve produces the same verdict, the same model, and the
//!   same [`SolverStats`](jinjing_solver::SolverStats) delta a cold
//!   `run_query` would. That result is memoized; answering the base
//!   query again replays the memo. This is what keeps reports
//!   byte-identical to the cold path at any thread count, warm on or
//!   off, cache on or off: a warm answer *is* the cold answer.
//! - **Assumption-scoped extensions.** Narrower questions against a warm
//!   family — "does the disagreement fall inside *this* class?" — are
//!   asked via [`ScopeSolver::query_in_class`]: a fresh **selector
//!   literal** `g` guards the class constraint (`g → in_class`) and the
//!   query runs as `solve_with([g])`. The encoding is never rebuilt;
//!   learned clauses, VSIDS activities and saved phases carry over
//!   between queries, and the solver's clause-database reduction (LBD /
//!   glucose-style, see `jinjing-solver`) keeps the long-lived instance
//!   healthy. Retracting a pin permanently asserts `¬g`, which
//!   deactivates every clause the selector guards.
//! - **Generations.** Like the query cache, families and pins carry
//!   generation tags; [`ScopeSolver::advance_generation`] +
//!   [`ScopeSolver::retract_stale`] let a long-lived
//!   [`CheckSession`](crate::incr::CheckSession) drop families whose
//!   chains no recent delta touched and flip the selectors of stale
//!   class pins, bounding the resident solver state.
//!
//! Concurrency mirrors [`crate::qcache`]: a sharded map, shard locks
//! never held across a solve, first family writer wins (benign — the
//! construction is deterministic, so racing builders produce identical
//! families). Each family's live solver is behind its own `Mutex`;
//! distinct chains never contend.

use crate::qcache::{region_fingerprint, CachedSolve, QueryKey};
use jinjing_acl::{Acl, PacketSet};
use jinjing_lai::ControlVerb;
use jinjing_solver::aclenc::{encode, Encoding};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::lit::Lit;
use jinjing_solver::{CircuitBuilder, HeaderVars};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked family shards (power of two).
const SHARDS: usize = 16;

/// A class pin inside a family's live solver: the selector literal
/// guarding one `in_class` constraint, plus the structural set (collision
/// safety, as in the query cache) and the last generation that used it.
struct Pin {
    fp: u64,
    set: PacketSet,
    guard: Lit,
    last_used: u64,
}

/// The mutable half of a family: the persistent solver and its pins.
struct Live {
    builder: CircuitBuilder,
    h: HeaderVars,
    pins: Vec<Pin>,
}

/// One persistent solver family: the memoized canonical first solve and
/// the live instance that answers assumption-scoped extensions.
struct Family {
    memo: CachedSolve,
    live: Mutex<Live>,
    last_used: AtomicU64,
}

/// Aggregate counters of a [`ScopeSolver`], for benches and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Resident families.
    pub families: usize,
    /// Families constructed (cold builds absorbed by the layer).
    pub builds: u64,
    /// Base queries answered by memo replay (no solver work at all).
    pub replays: u64,
    /// Class pins encoded into live solvers.
    pub pin_encodes: u64,
    /// Class-pinned queries that reused an existing pin's selector.
    pub pin_reuses: u64,
    /// Families dropped by [`ScopeSolver::retract_stale`].
    pub retracted_families: u64,
    /// Pins retracted (selector flipped) by [`ScopeSolver::retract_stale`].
    pub retracted_pins: u64,
}

/// Persistent per-scope warm solver families. See the module docs for the
/// determinism contract.
pub struct ScopeSolver {
    shards: Vec<Mutex<HashMap<QueryKey, Arc<Family>>>>,
    generation: AtomicU64,
    builds: AtomicU64,
    replays: AtomicU64,
    pin_encodes: AtomicU64,
    pin_reuses: AtomicU64,
    retracted_families: AtomicU64,
    retracted_pins: AtomicU64,
}

impl std::fmt::Debug for ScopeSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeSolver")
            .field("families", &self.len())
            .field("generation", &self.generation())
            .finish()
    }
}

impl Default for ScopeSolver {
    fn default() -> ScopeSolver {
        ScopeSolver::new()
    }
}

impl ScopeSolver {
    /// Fresh, empty warm layer.
    #[must_use]
    pub fn new() -> ScopeSolver {
        ScopeSolver {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            generation: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            pin_encodes: AtomicU64::new(0),
            pin_reuses: AtomicU64::new(0),
            retracted_families: AtomicU64::new(0),
            retracted_pins: AtomicU64::new(0),
        }
    }

    /// The current generation (epoch).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Start a new generation and return it (one per session `recheck`).
    pub fn advance_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<HashMap<QueryKey, Arc<Family>>> {
        &self.shards[(key.fingerprint() as usize) & (SHARDS - 1)]
    }

    /// Fetch the family for a query shape, constructing it (canonically,
    /// outside any shard lock) on first sight. Returns `(family, warm)`
    /// where `warm` is `true` when the family already existed.
    fn family(
        &self,
        chain: &[(&Acl, &Acl)],
        verb: Option<ControlVerb>,
        encoding: Encoding,
        region: Option<&PacketSet>,
    ) -> (Arc<Family>, bool) {
        let key = QueryKey::build(chain, verb, encoding, region);
        let generation = self.generation();
        if let Some(fam) = self
            .shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            fam.last_used.store(generation, Ordering::Relaxed);
            return (Arc::clone(fam), true);
        }
        // Build without holding the shard lock; racing builders produce
        // identical families (the construction is deterministic), so the
        // first writer winning is invisible.
        let (memo, live) = build_family(chain, verb, encoding, region);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut map = self
            .shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let fam = map.entry(key).or_insert_with(|| {
            Arc::new(Family {
                memo,
                live: Mutex::new(live),
                last_used: AtomicU64::new(generation),
            })
        });
        fam.last_used.store(generation, Ordering::Relaxed);
        (Arc::clone(fam), false)
    }

    /// Answer the base (class-free) query for a chain: the canonical
    /// first solve on a miss, a memo replay on a hit. Returns
    /// `(result, warm)` where `warm` is `true` for a replay. The result
    /// is byte-identical to the cold path's in either case.
    pub fn query(
        &self,
        chain: &[(&Acl, &Acl)],
        verb: Option<ControlVerb>,
        encoding: Encoding,
        region: Option<&PacketSet>,
    ) -> (CachedSolve, bool) {
        let (fam, warm) = self.family(chain, verb, encoding, region);
        if warm {
            self.replays.fetch_add(1, Ordering::Relaxed);
        }
        (fam.memo.clone(), warm)
    }

    /// Answer a class-pinned query against the warm family:
    /// `∃h ∈ region ∩ class_set` with a decision disagreement. The class
    /// constraint enters the live solver once, guarded by a fresh
    /// selector literal, and the query runs as `solve_with([selector])` —
    /// no re-encoding, learned clauses and heuristic state carried over.
    ///
    /// The returned stats are the solve's delta, as a cold query's would
    /// be — but unlike [`ScopeSolver::query`] they reflect the warm
    /// search history, so callers that fold stats into deterministic
    /// reports must not route those queries here (the check hot path
    /// keeps stage 2 cold for exactly this reason).
    pub fn query_in_class(
        &self,
        chain: &[(&Acl, &Acl)],
        verb: Option<ControlVerb>,
        encoding: Encoding,
        region: Option<&PacketSet>,
        class_set: &PacketSet,
    ) -> CachedSolve {
        let (fam, _) = self.family(chain, verb, encoding, region);
        let generation = self.generation();
        let mut live = fam
            .live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let fp = region_fingerprint(class_set);
        let guard = match live
            .pins
            .iter()
            .position(|p| p.fp == fp && p.set == *class_set)
        {
            Some(i) => {
                live.pins[i].last_used = generation;
                self.pin_reuses.fetch_add(1, Ordering::Relaxed);
                live.pins[i].guard
            }
            None => {
                let Live { builder, h, pins } = &mut *live;
                let g = builder.input();
                let in_class = h.in_set(builder, class_set);
                builder.assert_clause(&[!g, in_class]);
                pins.push(Pin {
                    fp,
                    set: class_set.clone(),
                    guard: g,
                    last_used: generation,
                });
                self.pin_encodes.fetch_add(1, Ordering::Relaxed);
                g
            }
        };
        let before = live.builder.solver().stats();
        let result = live.builder.solve_with(&[guard]);
        let stats = live.builder.solver().stats().delta_since(&before);
        let model = (result == SolveResult::Sat).then(|| live.h.decode(&live.builder));
        CachedSolve {
            result,
            model,
            stats,
            vars: live.builder.solver().num_vars(),
            clauses: live.builder.solver().num_clauses(),
        }
    }

    /// Drop families unused for more than `keep` generations and flip the
    /// selectors of equally stale class pins inside surviving families
    /// (permanently asserting `¬guard`, which vacuates the pin's
    /// clauses). Returns `(families_dropped, pins_retracted)`.
    pub fn retract_stale(&self, keep: u64) -> (usize, usize) {
        let current = self.generation();
        let mut families = 0usize;
        let mut pins = 0usize;
        for s in &self.shards {
            let mut map = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let before = map.len();
            map.retain(|_, f| {
                f.last_used.load(Ordering::Relaxed).saturating_add(keep) >= current
            });
            families += before - map.len();
            for f in map.values() {
                let mut live = f
                    .live
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let Live { builder, pins: ps, .. } = &mut *live;
                let mut i = 0;
                while i < ps.len() {
                    if ps[i].last_used.saturating_add(keep) < current {
                        let g = ps[i].guard;
                        builder.assert(!g);
                        ps.swap_remove(i);
                        pins += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.retracted_families
            .fetch_add(families as u64, Ordering::Relaxed);
        self.retracted_pins.fetch_add(pins as u64, Ordering::Relaxed);
        (families, pins)
    }

    /// Resident family count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// `true` when no family is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every family.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }

    /// Aggregate counters since construction.
    #[must_use]
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            families: self.len(),
            builds: self.builds.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            pin_encodes: self.pin_encodes.load(Ordering::Relaxed),
            pin_reuses: self.pin_reuses.load(Ordering::Relaxed),
            retracted_families: self.retracted_families.load(Ordering::Relaxed),
            retracted_pins: self.retracted_pins.load(Ordering::Relaxed),
        }
    }
}

/// Construct one family: **instruction-for-instruction the cold path's
/// `run_query` construction** (same variable order, same clause order,
/// region asserted at the root, no class constraint), then the canonical
/// first solve. Any drift here breaks the byte-identity contract — the
/// warm-layer property tests and the goldens pin it.
fn build_family(
    chain: &[(&Acl, &Acl)],
    verb: Option<ControlVerb>,
    encoding: Encoding,
    region: Option<&PacketSet>,
) -> (CachedSolve, Live) {
    let mut builder = CircuitBuilder::new();
    let h = HeaderVars::new(&mut builder);
    let mut c_before = Vec::with_capacity(chain.len());
    let mut c_after = Vec::with_capacity(chain.len());
    for (b, a) in chain {
        c_before.push(encode(&mut builder, &h, b, encoding));
        c_after.push(encode(&mut builder, &h, a, encoding));
    }
    let cp = builder.and(&c_before);
    let cp2 = builder.and(&c_after);
    let desired = match verb {
        Some(ControlVerb::Isolate) => builder.f(),
        Some(ControlVerb::Open) => builder.t(),
        Some(ControlVerb::Maintain) | None => cp,
    };
    let eq = builder.iff(desired, cp2);
    builder.assert(!eq);
    if let Some(set) = region {
        let in_region = h.in_set(&mut builder, set);
        builder.assert(in_region);
    }
    let result = builder.solve();
    let model = (result == SolveResult::Sat).then(|| h.decode(&builder));
    let memo = CachedSolve {
        result,
        model,
        stats: builder.solver().stats(),
        vars: builder.solver().num_vars(),
        clauses: builder.solver().num_clauses(),
    };
    (
        memo,
        Live {
            builder,
            h,
            pins: Vec::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::AclBuilder;

    fn acl_a() -> Acl {
        AclBuilder::default_permit().deny_dst("1.0.0.0/8").build()
    }

    fn acl_b() -> Acl {
        AclBuilder::default_permit().deny_dst("2.0.0.0/8").build()
    }

    /// The packet region `dst ∈ prefix`, as a class stand-in.
    fn dst_class(prefix: &str) -> PacketSet {
        let p = jinjing_acl::parse::parse_prefix(prefix).unwrap();
        PacketSet::from_cube(jinjing_acl::MatchSpec::dst(p).cube())
    }

    #[test]
    fn replay_matches_first_solve() {
        let ws = ScopeSolver::new();
        let a = acl_a();
        let b = acl_b();
        let chain = [(&a, &b)];
        let (first, warm1) = ws.query(&chain, None, Encoding::Tree, None);
        assert!(!warm1);
        let (again, warm2) = ws.query(&chain, None, Encoding::Tree, None);
        assert!(warm2);
        assert_eq!(first.result, again.result);
        assert_eq!(first.model, again.model);
        assert_eq!(format!("{:?}", first.stats), format!("{:?}", again.stats));
        assert_eq!((first.vars, first.clauses), (again.vars, again.clauses));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.stats().builds, 1);
        assert_eq!(ws.stats().replays, 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_families() {
        let ws = ScopeSolver::new();
        let a = acl_a();
        let b = acl_b();
        ws.query(&[(&a, &b)], None, Encoding::Tree, None);
        ws.query(&[(&b, &a)], None, Encoding::Tree, None);
        ws.query(&[(&a, &b)], Some(ControlVerb::Isolate), Encoding::Tree, None);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws.stats().builds, 3);
    }

    #[test]
    fn class_pins_reuse_their_selector() {
        let ws = ScopeSolver::new();
        let a = acl_a();
        let b = acl_b();
        let chain = [(&a, &b)];
        // The a→b edit opens 1/8 and closes 2/8: a disagreement exists.
        let (base, _) = ws.query(&chain, None, Encoding::Tree, None);
        assert_eq!(base.result, SolveResult::Sat);
        let class = dst_class("1.0.0.0/8");
        let pinned = ws.query_in_class(&chain, None, Encoding::Tree, None, &class);
        assert_eq!(pinned.result, SolveResult::Sat);
        let m = pinned.model.expect("Sat stores a model");
        assert!(class.contains(&m), "model must respect the pinned class");
        // Second ask: same selector, no new pin encoded.
        let again = ws.query_in_class(&chain, None, Encoding::Tree, None, &class);
        assert_eq!(again.result, SolveResult::Sat);
        assert_eq!(ws.stats().pin_encodes, 1);
        assert_eq!(ws.stats().pin_reuses, 1);
        // A disjoint clean class: Unsat under its pin, on the same family.
        let clean = dst_class("9.0.0.0/8");
        let none = ws.query_in_class(&chain, None, Encoding::Tree, None, &clean);
        assert_eq!(none.result, SolveResult::Unsat);
        assert_eq!(ws.len(), 1, "all pins share one family");
    }

    #[test]
    fn retract_stale_drops_families_and_flips_pins() {
        let ws = ScopeSolver::new();
        let a = acl_a();
        let b = acl_b();
        let hot = [(&a, &b)];
        let cold = [(&b, &a)];
        ws.query(&hot, None, Encoding::Tree, None); // gen 0
        ws.query(&cold, None, Encoding::Tree, None); // gen 0
        let class = dst_class("1.0.0.0/8");
        for _ in 0..3 {
            ws.advance_generation();
            // Touch `hot` (and one pin on it) each generation.
            ws.query(&hot, None, Encoding::Tree, None);
            ws.query_in_class(&hot, None, Encoding::Tree, None, &class);
        }
        // Encode a second pin on `hot`, then let it go stale.
        let other = dst_class("2.0.0.0/8");
        ws.query_in_class(&hot, None, Encoding::Tree, None, &other);
        ws.advance_generation();
        ws.advance_generation();
        ws.query(&hot, None, Encoding::Tree, None);
        ws.query_in_class(&hot, None, Encoding::Tree, None, &class);
        let (families, pins) = ws.retract_stale(1);
        assert_eq!(families, 1, "the cold family is dropped");
        assert_eq!(pins, 1, "the stale pin's selector is flipped");
        assert_eq!(ws.len(), 1);
        // The surviving pin still answers, and the retracted one can be
        // re-encoded with a fresh selector — same verdicts as before.
        let live = ws.query_in_class(&hot, None, Encoding::Tree, None, &class);
        assert_eq!(live.result, SolveResult::Sat);
        let back = ws.query_in_class(&hot, None, Encoding::Tree, None, &other);
        assert_eq!(back.result, SolveResult::Sat);
    }

    #[test]
    fn family_memo_matches_an_independent_cold_build() {
        // The canonical-first-solve contract, directly: two independent
        // ScopeSolvers (and thus two independent cold constructions)
        // produce byte-identical memos.
        let a = acl_a();
        let b = acl_b();
        let chain = [(&a, &b)];
        let full = PacketSet::full();
        for region in [None, Some(&full)] {
            let (x, _) = ScopeSolver::new().query(&chain, None, Encoding::Tree, region);
            let (y, _) = ScopeSolver::new().query(&chain, None, Encoding::Tree, region);
            assert_eq!(x.result, y.result);
            assert_eq!(x.model, y.model);
            assert_eq!(format!("{:?}", x.stats), format!("{:?}", y.stats));
            assert_eq!((x.vars, x.clauses), (y.vars, y.clauses));
        }
    }
}
