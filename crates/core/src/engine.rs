//! The engine front door: run a resolved task end to end.
//!
//! `run` dispatches on the program's command and packages the primitive
//! outputs as a [`Report`] — the "update plan" Jinjing hands back to the
//! operator, including the concrete ACL texts to install.

use crate::check::{check, CheckConfig, CheckOutcome, CheckReport};
use crate::fix::{fix, FixConfig, FixError, FixPlan};
use crate::generate::{generate, GenerateConfig, GenerateError, GenerateReport};
use crate::incr::{CheckSession, IncrConfig};
use crate::plan::{PlanConfig, PlanError, RolloutPlan};
use crate::task::Task;
use jinjing_acl::atoms::ClassExplosion;
use jinjing_lai::Command;
use jinjing_net::{AclConfig, Network, Slot};
use std::fmt;

/// Engine-level configuration: per-primitive tunables.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Check tunables.
    pub check: CheckConfig,
    /// Fix tunables.
    pub fix: FixConfig,
    /// Generate tunables.
    pub generate: GenerateConfig,
    /// Incremental-session tunables (cache-eviction window, base-advance
    /// policy) for sessions opened through [`open_session`].
    pub incr: IncrConfig,
    /// Rollout-planner tunables (wave budget, step ceiling) for
    /// [`plan`].
    pub plan: PlanConfig,
    /// Run-level worker-thread override. When non-zero, [`run`] pushes it
    /// into every primitive's `threads` knob (check's query fan-out, batch
    /// fix's placement fan-out, generate's AEC sweep). `0` leaves the
    /// per-primitive settings alone (their own `0` means "consult
    /// `JINJING_THREADS`, default serial").
    pub threads: usize,
    /// The run's observability collector. [`run`] shares it with every
    /// primitive (overriding the per-primitive collectors), so one span
    /// tree and one metric store describe the whole run.
    pub obs: jinjing_obs::Collector,
}

/// What the engine produced: the primitive's report plus the run's
/// observability snapshot (span tree, metrics, events).
#[derive(Debug)]
pub struct Report {
    /// The primitive output.
    pub kind: ReportKind,
    /// Frozen observability data for the run (serialize with
    /// [`jinjing_obs::Snapshot::to_json`]).
    pub obs: jinjing_obs::Snapshot,
}

/// Which primitive ran, and what it produced.
#[derive(Debug)]
pub enum ReportKind {
    /// `check` ran.
    Check(CheckReport),
    /// `fix` ran (check + repair).
    Fix(FixPlan),
    /// `generate` ran.
    Generate(GenerateReport),
    /// `lint` ran (static analysis; produces diagnostics, never a plan).
    Lint(jinjing_lint::LintReport),
    /// `plan` ran (safe update sequencing; produces a certified rollout
    /// ordering, or a minimal infeasibility core).
    Plan(RolloutPlan),
}

impl Report {
    /// The configuration the operator should deploy, when one exists
    /// (`fix`/`generate`; a consistent `check` means "deploy the update
    /// as written", returned as `None`).
    pub fn deployable(&self) -> Option<&AclConfig> {
        match &self.kind {
            // A plan sequences a target the operator already holds; it
            // does not introduce a new configuration.
            ReportKind::Check(_) | ReportKind::Lint(_) | ReportKind::Plan(_) => None,
            ReportKind::Fix(p) => Some(&p.fixed),
            ReportKind::Generate(g) => Some(&g.generated),
        }
    }

    /// One-line verdict for logs.
    pub fn verdict(&self) -> String {
        match &self.kind {
            ReportKind::Check(r) => match &r.outcome {
                CheckOutcome::Consistent => "consistent".to_string(),
                CheckOutcome::Inconsistent(v) => {
                    format!("inconsistent (witness {})", v.packet)
                }
            },
            ReportKind::Fix(p) => format!(
                "fixed: {} rules added across {} neighborhoods",
                p.added_rules.len(),
                p.neighborhoods.len()
            ),
            ReportKind::Generate(g) => format!(
                "generated {} rules over {} classes ({} DEC-split)",
                g.rules_final, g.aec_count, g.aecs_split
            ),
            ReportKind::Lint(r) => {
                if r.is_empty() {
                    "lint: clean".to_string()
                } else {
                    use jinjing_lint::Severity;
                    format!(
                        "lint: {} diagnostic(s) ({} error(s), {} warning(s), {} note(s))",
                        r.len(),
                        r.count(Severity::Error),
                        r.count(Severity::Warning),
                        r.count(Severity::Note)
                    )
                }
            }
            ReportKind::Plan(p) => p.verdict(),
        }
    }
}

/// Engine failures.
#[derive(Debug)]
pub enum EngineError {
    /// Equivalence-class explosion during check.
    Classes(ClassExplosion),
    /// The shard fan-out behind a delegated check failed.
    Shard(String),
    /// Fix failed.
    Fix(FixError),
    /// Generate failed.
    Generate(GenerateError),
    /// Plan synthesis failed (infeasibility is a *result*, not an error).
    Plan(PlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Classes(e) => write!(f, "{e}"),
            EngineError::Shard(msg) => write!(f, "shard fan-out failed: {msg}"),
            EngineError::Fix(e) => write!(f, "{e}"),
            EngineError::Generate(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<crate::check::CheckError> for EngineError {
    fn from(e: crate::check::CheckError) -> EngineError {
        match e {
            crate::check::CheckError::Classes(c) => EngineError::Classes(c),
            crate::check::CheckError::Shard(msg) => EngineError::Shard(msg),
        }
    }
}

/// Execute a task.
///
/// The engine's collector ([`EngineConfig::obs`]) is pushed down into every
/// primitive configuration before dispatch, so the whole run — including the
/// nested certification `check` inside `fix` — lands in one span tree. The
/// frozen [`jinjing_obs::Snapshot`] rides back on the [`Report`].
pub fn run(net: &Network, task: &Task, cfg: &EngineConfig) -> Result<Report, EngineError> {
    let obs = cfg.obs.clone();
    let mut cfg = cfg.clone();
    cfg.check.obs = obs.clone();
    cfg.fix.check.obs = obs.clone();
    cfg.generate.obs = obs.clone();
    if cfg.threads != 0 {
        cfg.check.threads = cfg.threads;
        cfg.fix.check.threads = cfg.threads;
        cfg.generate.threads = cfg.threads;
    }
    // One solver-query cache per run: the counterexample search inside fix
    // and its final certification check hit the same decision-model
    // comparisons, so they share the engine-level cache — and the warm
    // solver layer, for the same reason (its families are keyed by the
    // same dimension-free query material).
    cfg.fix.check.cache = cfg.check.cache.clone();
    cfg.fix.check.warm = cfg.check.warm.clone();
    obs.event(
        jinjing_obs::Level::Info,
        "engine.start",
        &format!("running {:?}", task.command),
    );
    let run_span = obs.span("engine.run");
    let kind = match task.command {
        Command::Check => check(net, task, &cfg.check)
            .map(ReportKind::Check)
            .map_err(EngineError::from),
        Command::Fix => fix(net, task, &cfg.fix)
            .map(ReportKind::Fix)
            .map_err(EngineError::Fix),
        Command::Generate => generate(net, task, &cfg.generate)
            .map(ReportKind::Generate)
            .map_err(EngineError::Generate),
    };
    run_span.finish();
    match kind {
        Ok(kind) => Ok(Report {
            kind,
            obs: obs.snapshot(),
        }),
        Err(e) => {
            obs.event(jinjing_obs::Level::Error, "engine.error", &e.to_string());
            Err(e)
        }
    }
}

/// Open an incremental [`CheckSession`] for a resolved task, applying the
/// same configuration pushdown as [`run`]: the engine's collector and
/// run-level thread override land in the session's check configuration,
/// and the engine-level query cache becomes the session's persistent
/// generation-tagged cache. The task's scope, controls and *current*
/// configuration (`task.before`) seed the session; its update
/// (`task.after`) is ignored — deltas arrive through
/// [`CheckSession::recheck`].
pub fn open_session<'n>(
    net: &'n Network,
    task: &Task,
    cfg: &EngineConfig,
) -> Result<CheckSession<'n>, EngineError> {
    let mut check_cfg = cfg.check.clone();
    check_cfg.obs = cfg.obs.clone();
    if cfg.threads != 0 {
        check_cfg.threads = cfg.threads;
    }
    CheckSession::for_task(net, task, check_cfg, cfg.incr.clone()).map_err(EngineError::Classes)
}

/// Synthesize a certified rollout plan from the task's current
/// configuration (`task.before`) to `target`, under the task's scope and
/// controls, packaged like every other primitive: a [`Report`] carrying a
/// [`RolloutPlan`] plus the run's observability snapshot.
///
/// The same configuration pushdown as [`run`] applies: the engine's
/// collector and run-level thread override land in the planner's check
/// configuration, and its solver-query cache + warm families back every
/// prefix-state probe. The target usually comes from the task's own
/// update (`task.after`) or from a delta script applied on top of it.
pub fn plan(
    net: &Network,
    task: &Task,
    target: &AclConfig,
    cfg: &EngineConfig,
) -> Result<Report, EngineError> {
    let obs = cfg.obs.clone();
    let mut check_cfg = cfg.check.clone();
    check_cfg.obs = obs.clone();
    if cfg.threads != 0 {
        check_cfg.threads = cfg.threads;
    }
    obs.event(jinjing_obs::Level::Info, "engine.start", "running plan");
    let rollout = crate::plan::synthesize(
        net,
        &task.scope,
        &task.controls,
        &task.before,
        target,
        &check_cfg,
        &cfg.plan,
    )
    .map_err(EngineError::Plan)?;
    Ok(Report {
        kind: ReportKind::Plan(rollout),
        obs: obs.snapshot(),
    })
}

/// Run the static analysis pass (jinjing-lint) over a built network, its
/// ACL configuration, and optionally an LAI program, packaged like every
/// other primitive: a [`Report`] with a sorted
/// [`jinjing_lint::LintReport`] inside and the run's observability
/// snapshot alongside.
///
/// Unlike `check`/`fix`/`generate`, lint needs no resolved [`Task`]: it
/// inspects what already exists rather than what an update would do, so it
/// can run before any update is even proposed.
pub fn lint(
    net: &Network,
    config: &AclConfig,
    program: Option<&jinjing_lai::Program>,
    cfg: &jinjing_lint::LintConfig,
) -> Report {
    let obs = cfg.obs.clone();
    obs.event(jinjing_obs::Level::Info, "engine.start", "running lint");
    let run_span = obs.span("lint.run");
    let mut report = jinjing_lint::lint_config(net, config, cfg);
    if let Some(p) = program {
        report.merge(jinjing_lint::lint_program(p, cfg));
    }
    report.sort();
    run_span.finish();
    Report {
        kind: ReportKind::Lint(report),
        obs: obs.snapshot(),
    }
}

/// Run the multi-tenant static analysis pass: single-program lint for each
/// tenant's intent (findings attributed to that tenant) plus the
/// cross-tenant JL3xx layer ([`jinjing_lint::lint_multi`]) — solver-
/// certified conflicts with witness packets, cross-tenant subsumption, and
/// the priority-merge preview for the given tenant `priority` order.
/// Network/config findings are reported once, unattributed. The merged
/// report is sorted, so the bytes are independent of tenant input order
/// and thread count.
pub fn lint_multi(
    net: &Network,
    config: &AclConfig,
    tenants: &[jinjing_lint::TenantIntent],
    priority: &[String],
    cfg: &jinjing_lint::LintConfig,
) -> Report {
    let obs = cfg.obs.clone();
    obs.event(
        jinjing_obs::Level::Info,
        "engine.start",
        "running multi-tenant lint",
    );
    let run_span = obs.span("lint.run");
    let mut report = jinjing_lint::lint_config(net, config, cfg);
    for t in tenants {
        let mut r = jinjing_lint::lint_program(&t.program, cfg);
        r.attribute_tenant(&t.tenant);
        report.merge(r);
    }
    report.merge(jinjing_lint::lint_multi(tenants, priority, cfg));
    report.sort();
    run_span.finish();
    Report {
        kind: ReportKind::Lint(report),
        obs: obs.snapshot(),
    }
}

/// The roll-back plan for an applied update: the inverse rendering that
/// restores `from` after `to` was deployed. §1 notes operators spend weeks
/// preparing "migration and roll-back plans"; with declarative configs the
/// roll-back is just the plan in the other direction.
pub fn rollback_plan(
    net: &Network,
    from: &AclConfig,
    to: &AclConfig,
) -> Vec<(Slot, String, String)> {
    render_plan(net, to, from)
}

/// Render the difference between two configurations as deployable ACL text
/// (per changed slot), for operator review.
pub fn render_plan(net: &Network, from: &AclConfig, to: &AclConfig) -> Vec<(Slot, String, String)> {
    let mut slots: Vec<Slot> = from.slots();
    for s in to.slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    slots.sort();
    let mut out = Vec::new();
    for slot in slots {
        let before = from
            .get(slot)
            .map_or_else(|| "(no acl)".to_string(), ToString::to_string);
        let after = to
            .get(slot)
            .map_or_else(|| "(no acl)".to_string(), ToString::to_string);
        if before != after {
            let name = format!("{}-{}", net.topology().iface_name(slot.iface), slot.dir);
            out.push((slot, name, after));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::Figure1;
    use crate::resolve::resolve;
    use jinjing_lai::{parse_program, validate};

    fn run_src(f: &Figure1, src: &str) -> Result<Report, EngineError> {
        let prog = validate(parse_program(src).unwrap()).unwrap();
        let task = resolve(&f.net, &prog, &f.config).unwrap();
        run(&f.net, &task, &EngineConfig::default())
    }

    const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
}
acl A3' { deny dst 7.0.0.0/8 }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

    #[test]
    fn end_to_end_check_then_fix() {
        let f = Figure1::new();
        // check reports inconsistent (as in Figure 3).
        let report = run_src(&f, &format!("{RUNNING_EXAMPLE_BODY}check\n")).unwrap();
        assert!(
            report.verdict().starts_with("inconsistent"),
            "{}",
            report.verdict()
        );
        assert!(report.deployable().is_none());
        // fix produces a deployable, consistent plan.
        let report = run_src(&f, &format!("{RUNNING_EXAMPLE_BODY}fix\n")).unwrap();
        let fixed = report.deployable().expect("fix yields a config");
        let verdict = crate::check::check_exact(&f.net, &f.scope(), &f.config, fixed, &[]);
        assert!(verdict.is_consistent());
    }

    #[test]
    fn end_to_end_generate_migration() {
        let f = Figure1::new();
        let src = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;
        let report = run_src(&f, src).unwrap();
        let generated = report.deployable().unwrap();
        // Reachability preserved relative to the original config.
        let verdict = crate::check::check_exact(&f.net, &f.scope(), &f.config, generated, &[]);
        assert!(verdict.is_consistent(), "{verdict:?}");
        assert!(report.verdict().starts_with("generated"));
    }

    #[test]
    fn engine_lint_packages_a_sorted_report() {
        let f = Figure1::new();
        let cfg = jinjing_lint::LintConfig::default();
        let report = lint(&f.net, &f.config, None, &cfg);
        assert!(report.deployable().is_none());
        assert!(
            report.verdict().starts_with("lint:"),
            "{}",
            report.verdict()
        );
        let ReportKind::Lint(r) = &report.kind else {
            panic!("expected a lint report")
        };
        // Sorted: locations are non-decreasing.
        let locs: Vec<&str> = r
            .diagnostics()
            .iter()
            .map(|d| d.location.as_str())
            .collect();
        let mut sorted = locs.clone();
        sorted.sort_unstable();
        assert_eq!(locs, sorted);
        // The run's spans landed in the snapshot under lint.run.
        assert!(report.obs.to_json().contains("lint.run"));
    }

    #[test]
    fn engine_lint_multi_attributes_and_cross_checks() {
        let f = Figure1::new();
        let alpha = "acl Unused { permit all }\nscope A:*, D:*\n\
                     control A:* -> D:* isolate dst 1.0.0.0/8\ncheck\n";
        let beta = "scope A:*, D:*\ncontrol A:1 -> D:* open dst 1.2.0.0/16\ncheck\n";
        let tenants = [
            jinjing_lint::TenantIntent::new(
                "alpha",
                validate(parse_program(alpha).unwrap()).unwrap(),
            ),
            jinjing_lint::TenantIntent::new("beta", validate(parse_program(beta).unwrap()).unwrap()),
        ];
        let cfg = jinjing_lint::LintConfig::default();
        let report = lint_multi(&f.net, &f.config, &tenants, &["alpha".into(), "beta".into()], &cfg);
        let ReportKind::Lint(r) = &report.kind else {
            panic!("expected a lint report")
        };
        // Cross-tenant conflict, solver-certified, with both spans.
        let conflict = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "JL301")
            .expect("JL301 present");
        assert_eq!(conflict.tenant.as_deref(), Some("alpha,beta"));
        assert!(conflict.location.contains("alpha:control:0"));
        assert!(conflict.location.contains("beta:control:0"));
        // Alpha's single-program finding is attributed to alpha.
        let unused = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "JL104")
            .expect("JL104 present");
        assert_eq!(unused.tenant.as_deref(), Some("alpha"));
        // Priority order covers both tenants: merge is total.
        assert!(r.has_code("JL303"));
        assert!(!r.has_code("JL304"));
        // Input order does not change the bytes.
        let swapped = [tenants[1].clone(), tenants[0].clone()];
        let report2 = lint_multi(
            &f.net,
            &f.config,
            &swapped,
            &["alpha".into(), "beta".into()],
            &jinjing_lint::LintConfig::default(),
        );
        let ReportKind::Lint(r2) = &report2.kind else {
            panic!("expected a lint report")
        };
        assert_eq!(r.to_json(), r2.to_json());
    }

    #[test]
    fn engine_lint_includes_program_findings() {
        let f = Figure1::new();
        let src = "acl Unused { permit all }\nacl X { deny dst 9.0.0.0/8 }\n\
                   scope A:*\nallow A:*\nmodify A:1 to X\ncheck\n";
        let prog = validate(parse_program(src).unwrap()).unwrap();
        let cfg = jinjing_lint::LintConfig::default();
        let report = lint(&f.net, &f.config, Some(&prog), &cfg);
        let ReportKind::Lint(r) = &report.kind else {
            panic!("expected a lint report")
        };
        assert!(r.has_code("JL104"), "{}", r.render_text());
    }

    #[test]
    fn open_session_matches_the_one_shot_check() {
        use crate::incr::Delta;
        let f = Figure1::new();
        let prog =
            validate(parse_program(&format!("{RUNNING_EXAMPLE_BODY}check\n")).unwrap()).unwrap();
        let task = resolve(&f.net, &prog, &f.config).unwrap();
        let cfg = EngineConfig::default();
        // The one-shot engine run of the same update.
        let one_shot = run(&f.net, &task, &cfg).unwrap();
        // A session seeded from the task, fed the update as a delta.
        let mut session = open_session(&f.net, &task, &cfg).unwrap();
        let mut delta = Delta::new();
        for slot in task.after.slots() {
            delta = delta.set(slot, task.after.get(slot).unwrap().clone());
        }
        for slot in task.before.slots() {
            if task.after.get(slot).is_none() {
                delta = delta.clear(slot);
            }
        }
        let step = session.recheck(&delta).unwrap();
        let ReportKind::Check(want) = &one_shot.kind else {
            panic!("check task yields a check report")
        };
        assert_eq!(
            format!("{:?}", step.report.outcome),
            format!("{:?}", want.outcome)
        );
        assert_eq!(step.report.fec_count, want.fec_count);
        assert_eq!(step.report.paths_checked, want.paths_checked);
        assert!(!step.applied, "inconsistent update must be rejected");
    }

    #[test]
    fn rollback_is_the_inverse_plan() {
        let f = Figure1::new();
        let mut to = f.config.clone();
        to.set(f.slot("D2"), jinjing_acl::Acl::permit_all());
        let forward = render_plan(&f.net, &f.config, &to);
        let backward = rollback_plan(&f.net, &f.config, &to);
        assert_eq!(forward.len(), 1);
        assert_eq!(backward.len(), 1);
        assert_eq!(forward[0].1, backward[0].1); // same slot
                                                 // Applying the rollback text restores the original rules.
        assert!(backward[0].2.contains("deny dst 1.0.0.0/8"));
        assert!(forward[0].2.contains("default permit"));
    }

    #[test]
    fn render_plan_lists_changed_slots_only() {
        let f = Figure1::new();
        let mut to = f.config.clone();
        to.set(f.slot("D2"), jinjing_acl::Acl::permit_all());
        let plan = render_plan(&f.net, &f.config, &to);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].1, "D:2-in");
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use crate::figure1::Figure1;
    use crate::Task;
    use jinjing_lai::Command;

    #[test]
    fn engine_surfaces_unfixable() {
        let f = Figure1::new();
        let task = Task {
            scope: f.scope(),
            allow: Vec::new(), // nothing may change → unfixable
            before: f.config.clone(),
            after: f.bad_update(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        let err = run(&f.net, &task, &EngineConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::Fix(_)), "{err}");
        assert!(err.to_string().contains("no consistent placement"), "{err}");
    }

    #[test]
    fn engine_surfaces_generate_no_solution() {
        use crate::control::ResolvedControl;
        use jinjing_lai::ControlVerb;
        use std::collections::HashSet;
        let f = Figure1::new();
        let task = Task {
            scope: f.scope(),
            allow: vec![f.slot("C1")], // traffic 3 never crosses C1
            before: f.config.clone(),
            after: f.config.clone(),
            modified: Vec::new(),
            controls: vec![ResolvedControl {
                from: HashSet::from([f.iface("A1")]),
                to: HashSet::from([f.iface("D3")]),
                verb: ControlVerb::Isolate,
                region: f.traffic(3),
            }],
            command: Command::Generate,
        };
        let err = run(&f.net, &task, &EngineConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::Generate(_)));
        assert!(err.to_string().contains("no valid ACL placement"), "{err}");
    }

    #[test]
    fn class_explosion_is_reported_not_panicked() {
        use jinjing_acl::atoms::RefineLimits;
        let f = Figure1::new();
        let mut cfg = EngineConfig::default();
        cfg.check.refine_limits = RefineLimits { max_classes: 1 };
        let task = Task {
            scope: f.scope(),
            allow: Vec::new(),
            before: f.config.clone(),
            after: f.bad_update(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Check,
        };
        let err = run(&f.net, &task, &cfg).unwrap_err();
        assert!(err.to_string().contains("explosion"), "{err}");
    }
}
