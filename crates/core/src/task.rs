//! A resolved update task: everything the primitives need, bound to a
//! concrete network.

use crate::control::ResolvedControl;
use jinjing_lai::Command;
use jinjing_net::{AclConfig, Scope, Slot};

/// A fully resolved LAI task (the output of [`crate::resolve::resolve`]).
#[derive(Debug, Clone)]
pub struct Task {
    /// The management scope Ω.
    pub scope: Scope,
    /// Slots whose ACLs the primitives may change.
    pub allow: Vec<Slot>,
    /// Current (pre-update) ACL configuration — `L_Ω`.
    pub before: AclConfig,
    /// Proposed (post-update) configuration — `L'_Ω`: `before` with the
    /// program's `modify` statements applied.
    pub after: AclConfig,
    /// The slots `modify` touched (the migration sources for `generate`).
    pub modified: Vec<Slot>,
    /// Desired-reachability controls, in priority order.
    pub controls: Vec<ResolvedControl>,
    /// The command to execute.
    pub command: Command,
}

impl Task {
    /// `true` when no `control` statement was given, i.e. the desired
    /// reachability is the original reachability (packet reachability
    /// consistency, §3.3).
    pub fn preserves_original(&self) -> bool {
        self.controls.is_empty()
    }

    /// Is this slot allowed to change?
    pub fn is_allowed(&self, slot: Slot) -> bool {
        self.allow.contains(&slot)
    }
}
