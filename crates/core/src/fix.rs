//! The **fix** primitive (§4.2).
//!
//! When check reports an inconsistency, fix repairs the update by adding
//! high-priority rules on allowed slots. Two interchangeable engines are
//! provided ([`FixStrategy`]): the paper's iterative
//! counterexample-guided loop (default, described below) and a batch
//! variant that harvests every violation with the exact set algebra in a
//! single pass before solving placements (§4.2's result, reached without
//! per-counterexample solver round-trips).
//!
//! The iterative engine:
//!
//! 1. **Seeking neighborhoods** — each counterexample `h` from check is
//!    *enlarged* into a maximal rule-shaped tuple (Eq. 6): the largest
//!    per-field bit-prefix expansion whose packets all share `h`'s
//!    forwarding class, every ACL decision (before *and* after), and every
//!    control region. The expansion is found by binary search on each
//!    field's prefix length, validated exactly with the set algebra. The
//!    neighborhood is excluded and check re-runs until no counterexample
//!    remains.
//! 2. **Fixing plan generation** — per neighborhood, a boolean placement
//!    problem (Eq. 7 within Eq. 3's schema): one decision variable `D(ξ)`
//!    per slot on the neighborhood's paths, constrained so every path's
//!    conjunction equals the desired decision; non-`allow`ed slots are
//!    pinned to the updated configuration's decision. The *minimal changes*
//!    objective is a linear search over a sequential-counter cardinality
//!    bound on the change indicators.
//! 3. Rules `(action = D(ξ), match = neighborhood)` are prepended where the
//!    solved decision differs from the updated ACL's, and the touched ACLs
//!    are optionally simplified (§4.2 extensions).

use crate::check::{check_configs, CheckConfig, CheckReport};
use crate::control::{desired_decision, ResolvedControl};
use crate::task::Task;
use jinjing_acl::atoms::ClassExplosion;
use jinjing_acl::cube::Cube;
use jinjing_acl::interval::Interval;
use jinjing_acl::packet::Field;
use jinjing_acl::simplify::simplify;
use jinjing_acl::{Action, IpPrefix, MatchSpec, Packet, PacketSet, PortRange, Rule};
use jinjing_net::{AclConfig, Network, Path, Slot};
use jinjing_par::Pool;
use jinjing_solver::card::{at_most_assumption, counter_outputs};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::totaliser;
use jinjing_solver::lit::Lit;
use jinjing_solver::CircuitBuilder;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How fix hunts for violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixStrategy {
    /// The paper's loop: solver counterexample → neighborhood expansion →
    /// placement → block → repeat (§4.2). Default; scales like the paper
    /// (minutes on the large network).
    #[default]
    IterativeCegis,
    /// Reproduction extension: compute the complete violation set with the
    /// exact packet-set algebra, partition it into maximal uniform
    /// neighborhoods in one refinement pass, and solve placements per
    /// class. Produces the same repairs one to two orders of magnitude
    /// faster on large inputs.
    ExactBatch,
}

/// How the minimal-change cardinality bound is searched.
///
/// Both searches run on **one** solver instance and reach the same
/// minimal change count; where several equally minimal placements exist
/// they may surface different ones, so the default is the search the
/// committed fix goldens were produced with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinimizeSearch {
    /// Ascend k = 0, 1, 2, … over sequential-counter outputs until the
    /// first `Sat` — the historical loop: up to `changeable + 1` solves,
    /// most of them `Unsat` proofs at hopeless bounds. Default (pinned by
    /// the fix goldens).
    #[default]
    Ascend,
    /// Solve once unbounded, read the model's change count `c`, then
    /// tighten the totaliser `at_most(c − 1)` bound **by assumption** on
    /// the same warm solver until `Unsat` proves minimality. Every
    /// learned clause survives each tightening (assumptions only narrow
    /// the query), and the solve count is bounded by the distance from
    /// the first model's change count to the minimum — typically far
    /// fewer solves than the ascent when changeable slots abound.
    Descend,
}

/// Tunables for fix.
#[derive(Debug, Clone)]
pub struct FixConfig {
    /// Violation-hunting strategy.
    pub strategy: FixStrategy,
    /// Minimal-change bound search (see [`MinimizeSearch`]).
    pub minimize_search: MinimizeSearch,
    /// Check configuration used for counterexample search. Its `threads`
    /// setting also sizes the batch engine's placement fan-out, and its
    /// `cache` is shared with the final certification check.
    pub check: CheckConfig,
    /// Minimize the number of slots changed per neighborhood (§4.2
    /// "Optimization for minimal changes").
    pub minimize_changes: bool,
    /// Simplify the final ACLs (§4.2 "Simplifying the final ACL").
    pub simplify: bool,
    /// Abort after this many neighborhoods (safety valve; the paper notes
    /// unexpanded enumeration could run 10^31 iterations).
    pub max_neighborhoods: usize,
}

impl Default for FixConfig {
    fn default() -> FixConfig {
        FixConfig {
            strategy: FixStrategy::default(),
            minimize_search: MinimizeSearch::default(),
            check: CheckConfig::default(),
            minimize_changes: true,
            simplify: true,
            max_neighborhoods: 10_000,
        }
    }
}

/// Why fix failed.
#[derive(Debug)]
pub enum FixError {
    /// A neighborhood admits no consistent placement within `allow`.
    Unfixable {
        /// The neighborhood that cannot be repaired.
        neighborhood: MatchSpec,
    },
    /// Too many neighborhoods (see [`FixConfig::max_neighborhoods`]).
    TooManyNeighborhoods,
    /// Equivalence-class explosion during checking.
    Classes(ClassExplosion),
    /// A nested check's shard fan-out failed (delegated solving).
    Shard(String),
}

impl std::fmt::Display for FixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixError::Unfixable { neighborhood } => {
                write!(f, "no consistent placement for neighborhood {neighborhood}")
            }
            FixError::TooManyNeighborhoods => write!(f, "neighborhood budget exhausted"),
            FixError::Classes(e) => write!(f, "{e}"),
            FixError::Shard(msg) => write!(f, "shard fan-out failed: {msg}"),
        }
    }
}

impl std::error::Error for FixError {}

impl From<ClassExplosion> for FixError {
    fn from(e: ClassExplosion) -> FixError {
        FixError::Classes(e)
    }
}

impl From<crate::check::CheckError> for FixError {
    fn from(e: crate::check::CheckError) -> FixError {
        match e {
            crate::check::CheckError::Classes(c) => FixError::Classes(c),
            crate::check::CheckError::Shard(msg) => FixError::Shard(msg),
        }
    }
}

/// Wall-clock split of a fix run, mirroring the `fix.*` span tree. Each
/// field is the summed duration of the matching span across the whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixPhases {
    /// Counterexample hunting: per-class solver enumeration (iterative
    /// engine) or the exact violation sweep (batch engine).
    pub enumerate: std::time::Duration,
    /// Neighborhood enlargement (Eq. 6) / batch partitioning into maximal
    /// uniform neighborhoods.
    pub enlarge: std::time::Duration,
    /// Placement solving (Eq. 7) including fixing-rule emission.
    pub place: std::time::Duration,
    /// Final ACL simplification (§4.2 extension).
    pub simplify: std::time::Duration,
}

/// The produced fixing plan.
#[derive(Debug, Clone)]
pub struct FixPlan {
    /// Rules added, in application order, per slot.
    pub added_rules: Vec<(Slot, Rule)>,
    /// The repaired configuration (update + fixes, simplified if enabled).
    pub fixed: AclConfig,
    /// The neighborhoods that were repaired.
    pub neighborhoods: Vec<MatchSpec>,
    /// The final (consistent) check report.
    pub final_check: CheckReport,
    /// Per-phase wall-clock, sourced from the same spans the collector
    /// aggregates.
    pub phases: FixPhases,
}

/// Run fix on a resolved task.
pub fn fix(net: &Network, task: &Task, cfg: &FixConfig) -> Result<FixPlan, FixError> {
    fix_configs(
        net,
        task,
        &task.before,
        &task.after,
        &task.controls,
        &task.allow,
        cfg,
    )
}

#[allow(clippy::too_many_arguments)]
fn fix_configs(
    net: &Network,
    task: &Task,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    allow: &[Slot],
    cfg: &FixConfig,
) -> Result<FixPlan, FixError> {
    let obs = cfg.check.obs.clone();
    let _fix_span = obs.span("fix");
    let mut phases = FixPhases::default();
    let mut current = after.clone();
    let mut excluded = PacketSet::empty();
    let mut neighborhoods: Vec<MatchSpec> = Vec::new();
    let mut added_rules: Vec<(Slot, Rule)> = Vec::new();
    // Permit-set caches: compiling an ACL into its exact permit set is the
    // dominant cost of neighborhood expansion, and the `before` side never
    // changes; the `current` side is invalidated per repaired slot.
    let mut before_sets: HashMap<Slot, PacketSet> = HashMap::new();
    let mut current_sets: HashMap<Slot, PacketSet> = HashMap::new();

    if cfg.strategy == FixStrategy::ExactBatch {
        return fix_batch(net, task, before, after, controls, allow, cfg);
    }

    // Preprocess ONCE against the original update: Theorem 4.1 confines
    // violations to the differential cover, and fixing rules only ever
    // rewrite decisions inside already-repaired (blocked) neighborhoods, so
    // the cover never grows during the loop.
    let (pairs, cover, _, _) =
        crate::check::preprocess(before, after, controls, cfg.check.differential, None);
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(&task.scope) {
        universe = universe.union(&t);
    }
    let mut preds: Vec<PacketSet> = net
        .scope_predicates(&task.scope)
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    preds.extend(crate::control::control_regions(controls));
    let preds = jinjing_acl::atoms::dedupe_predicates(preds);
    let classes = jinjing_acl::atoms::refine(&universe, &preds, cfg.check.refine_limits)
        .map_err(FixError::Classes)?;

    let mut slots_union = before.slots();
    for s in after.slots() {
        if !slots_union.contains(&s) {
            slots_union.push(s);
        }
    }

    let skip_cover = |class: &PacketSet| cfg.check.differential && !class.intersects(&cover);
    for class in &classes {
        if skip_cover(&class.set) {
            continue;
        }
        let paths = net.all_paths_for_class(&task.scope, &class.set);
        if paths.is_empty() {
            continue;
        }
        // One incremental solver per class: counterexamples are enumerated
        // by blocking each repaired neighborhood and re-solving, so the
        // expensive class setup (FECs, circuit encodings) is paid once.
        let mut builder = CircuitBuilder::new();
        builder.set_obs(obs.clone());
        let hvars = jinjing_solver::HeaderVars::new(&mut builder);
        let mut lits_before: HashMap<Slot, Lit> = HashMap::new();
        let mut lits_after: HashMap<Slot, Lit> = HashMap::new();
        let mut disagreements: Vec<Lit> = Vec::new();
        let class_controls = crate::control::ClassControls::new(controls, &class.set);
        for path in &paths {
            let mut c_before: Vec<Lit> = Vec::new();
            let mut c_after: Vec<Lit> = Vec::new();
            for &slot in &path.slots {
                if let Some(pair) = pairs.get(&slot) {
                    let lb = *lits_before.entry(slot).or_insert_with(|| {
                        jinjing_solver::aclenc::encode(
                            &mut builder,
                            &hvars,
                            &pair.before,
                            cfg.check.encoding,
                        )
                    });
                    let la = *lits_after.entry(slot).or_insert_with(|| {
                        jinjing_solver::aclenc::encode(
                            &mut builder,
                            &hvars,
                            &pair.after,
                            cfg.check.encoding,
                        )
                    });
                    c_before.push(lb);
                    c_after.push(la);
                }
            }
            let cp = builder.and(&c_before);
            let cp2 = builder.and(&c_after);
            let desired = match class_controls.verb_for(path) {
                Some(jinjing_lai::ControlVerb::Isolate) => builder.f(),
                Some(jinjing_lai::ControlVerb::Open) => builder.t(),
                Some(jinjing_lai::ControlVerb::Maintain) | None => cp,
            };
            let eq = builder.iff(desired, cp2);
            disagreements.push(!eq);
        }
        let any = builder.or(&disagreements);
        let in_class = hvars.in_set(&mut builder, &class.set);
        builder.assert(any);
        builder.assert(in_class);
        if cfg.check.differential {
            let in_cover = hvars.in_set(&mut builder, &cover);
            builder.assert(in_cover);
        }

        // --- Counterexample enumeration for this class. ---
        loop {
            let sp = obs.span("fix.enumerate");
            let found = builder.solve() == SolveResult::Sat;
            phases.enumerate += sp.finish();
            if !found {
                break;
            }
            if neighborhoods.len() >= cfg.max_neighborhoods {
                return Err(FixError::TooManyNeighborhoods);
            }
            let h = hvars.decode(&builder);

            // Phase 1: enlarge h into its neighborhood (Eq. 6).
            let sp = obs.span("fix.enlarge");
            for &slot in &slots_union {
                before_sets
                    .entry(slot)
                    .or_insert_with(|| before.slot_permit_set(slot));
                current_sets
                    .entry(slot)
                    .or_insert_with(|| current.slot_permit_set(slot));
            }
            let m = expand_neighborhood(
                net,
                task,
                &slots_union,
                &before_sets,
                &current_sets,
                controls,
                &excluded,
                &h,
            );
            phases.enlarge += sp.finish();
            obs.event(
                jinjing_obs::Level::Debug,
                "fix.neighborhood",
                &format!("counterexample {h} enlarged to {m}"),
            );
            let region = PacketSet::from_cube(m.cube());
            excluded = excluded.union(&region);
            neighborhoods.push(m);

            // Phase 2: placement solve for this neighborhood.
            let sp = obs.span("fix.place");
            repair_neighborhood(
                net,
                task,
                before,
                &mut current,
                &mut current_sets,
                controls,
                allow,
                cfg,
                &[m],
                &region,
                &h,
                &mut added_rules,
            )?;
            phases.place += sp.finish();

            // Exclude the repaired region from further enumeration.
            let blocked = hvars.in_set(&mut builder, &region);
            builder.assert(!blocked);
        }
    }

    // Final certification: the repaired plan must pass a fresh check.
    let report = check_configs(net, &task.scope, before, &current, controls, &cfg.check)?;
    debug_assert!(
        report.outcome.is_consistent(),
        "fix left an inconsistency behind"
    );
    let mut fixed = current;
    if cfg.simplify {
        let sp = obs.span("fix.simplify");
        for slot in fixed.slots() {
            if let Some(acl) = fixed.get(slot) {
                if acl.len() <= 128 {
                    let (s, _) = simplify(acl);
                    fixed.set(slot, s);
                }
            }
        }
        phases.simplify = sp.finish();
    }
    obs.counter_add("fix.neighborhoods", neighborhoods.len() as u64);
    obs.counter_add("fix.added_rules", added_rules.len() as u64);
    Ok(FixPlan {
        added_rules,
        fixed,
        neighborhoods,
        final_check: report,
        phases,
    })
}

/// Solve the placement problem for one neighborhood and prepend the
/// resulting fixing rules to the current configuration (§4.2 "Fixing plan
/// generation", with the `allow` constraints and the minimal-change
/// objective).
#[allow(clippy::too_many_arguments)]
fn repair_neighborhood(
    net: &Network,
    task: &Task,
    before: &AclConfig,
    current: &mut AclConfig,
    current_sets: &mut HashMap<Slot, PacketSet>,
    controls: &[ResolvedControl],
    allow: &[Slot],
    cfg: &FixConfig,
    specs: &[MatchSpec],
    region: &PacketSet,
    h: &Packet,
    added_rules: &mut Vec<(Slot, Rule)>,
) -> Result<(), FixError> {
    let adds = solve_placement(
        net, task, before, current, controls, allow, cfg, specs, region, h,
    )?;
    apply_placement(current, current_sets, added_rules, &adds);
    Ok(())
}

/// The solving half of a neighborhood repair, pure with respect to `base`:
/// the fixing rules are *returned*, not applied. Because neighborhoods are
/// pairwise disjoint and fixing rules only match their own neighborhood,
/// `base`'s decision on any *other* neighborhood's packets is unchanged by
/// applying a placement — so solving every placement against the
/// pre-placement configuration and applying the results serially in
/// neighborhood order is bit-for-bit the sequential repair. That is what
/// lets the batch engine fan placements out across worker threads.
#[allow(clippy::too_many_arguments)]
fn solve_placement(
    net: &Network,
    task: &Task,
    before: &AclConfig,
    base: &AclConfig,
    controls: &[ResolvedControl],
    allow: &[Slot],
    cfg: &FixConfig,
    specs: &[MatchSpec],
    region: &PacketSet,
    h: &Packet,
) -> Result<Vec<(Slot, Rule)>, FixError> {
    let current = base;
    let paths = net.all_paths_for_class(&task.scope, region);
    let mut builder = CircuitBuilder::new();
    // Solver telemetry lands in the shared collector directly from the
    // worker: counters and histograms are commutative aggregates, so the
    // totals are schedule-independent (unlike spans, which workers never
    // open).
    builder.set_obs(cfg.check.obs.clone());
    // One decision variable per slot appearing on any carrying path.
    let mut vars: HashMap<Slot, Lit> = HashMap::new();
    for p in &paths {
        for &s in &p.slots {
            vars.entry(s).or_insert_with(|| builder.input());
        }
    }
    // Pin slots we may not change to the current configuration's decision
    // on the neighborhood.
    let mut order: Vec<Slot> = vars.keys().copied().collect();
    order.sort();
    for &slot in &order {
        if !allow.contains(&slot) {
            let pinned = current.slot_permits(slot, h);
            let v = vars[&slot];
            builder.assert(if pinned { v } else { !v });
        }
    }
    // Path constraints: conjunction of D over the path ⇔ desired.
    for p in &paths {
        if !region.is_subset(&p.carried) {
            // The neighborhood only partially flows here; it is still
            // decision-uniform (expansion included forwarding), so this
            // path carries none of it.
            continue;
        }
        let original = before.path_permits(p, h);
        let desired = desired_decision(controls, p, region, original);
        let lits: Vec<Lit> = p.slots.iter().map(|s| vars[s]).collect();
        let conj = builder.and(&lits);
        builder.assert(if desired { conj } else { !conj });
    }
    // Change indicators (w.r.t. the current/updated config).
    let changeable: Vec<Slot> = order
        .iter()
        .copied()
        .filter(|s| allow.contains(s))
        .collect();
    let indicators: Vec<Lit> = changeable
        .iter()
        .map(|&s| {
            let now = current.slot_permits(s, h);
            let v = vars[&s];
            let now_lit = if now { builder.t() } else { builder.f() };
            builder.xor(v, now_lit)
        })
        .collect();
    // One placement problem = one solver construction; the obs ledger
    // lets `figures solve` contrast this against a per-bound cold loop.
    cfg.check.obs.counter_add("fix.place_builders", 1);
    let mut solves = 0u64;
    let sat = if cfg.minimize_changes {
        match cfg.minimize_search {
            MinimizeSearch::Ascend => {
                let outputs = counter_outputs(&mut builder, &indicators);
                let mut found = false;
                for k in 0..=indicators.len() {
                    let assumptions: Vec<Lit> =
                        at_most_assumption(&outputs, k).into_iter().collect();
                    solves += 1;
                    if builder.solve_with(&assumptions) == SolveResult::Sat {
                        found = true;
                        break;
                    }
                }
                found
            }
            MinimizeSearch::Descend => {
                let outputs = totaliser::totaliser_outputs(&mut builder, &indicators);
                solves += 1;
                if builder.solve() == SolveResult::Sat {
                    // Tighten `at_most` by assumption on the same warm
                    // solver until Unsat proves the current count minimal.
                    // The model snapshot survives a failed tightening, so
                    // the last Sat model is still readable at emission.
                    loop {
                        let c = indicators
                            .iter()
                            .filter(|&&l| builder.model_value(l))
                            .count();
                        if c == 0 {
                            break; // zero changes: trivially minimal
                        }
                        let Some(a) = totaliser::at_most_assumption(&outputs, c - 1) else {
                            break;
                        };
                        solves += 1;
                        if builder.solve_with(&[a]) == SolveResult::Unsat {
                            break;
                        }
                    }
                    true
                } else {
                    false
                }
            }
        }
    } else {
        solves += 1;
        builder.solve() == SolveResult::Sat
    };
    cfg.check.obs.counter_add("fix.place_solves", solves);
    if !sat {
        return Err(FixError::Unfixable {
            neighborhood: specs[0],
        });
    }
    // Emit fixing rules where the solved decision differs from the base
    // ACL's decision on the neighborhood (one rule per covering tuple).
    let mut adds: Vec<(Slot, Rule)> = Vec::new();
    for &slot in &changeable {
        let want = builder.model_value(vars[&slot]);
        let now = current.slot_permits(slot, h);
        if want != now {
            for &m in specs {
                adds.push((slot, Rule::new(Action::from_bool(want), m)));
            }
        }
    }
    Ok(adds)
}

/// Apply a solved placement: prepend each slot's fixing rules (in spec
/// order, as one batch per slot) and invalidate the slot's permit-set
/// cache. `adds` is slot-major as produced by [`solve_placement`].
fn apply_placement(
    current: &mut AclConfig,
    current_sets: &mut HashMap<Slot, PacketSet>,
    added_rules: &mut Vec<(Slot, Rule)>,
    adds: &[(Slot, Rule)],
) {
    let mut i = 0;
    while i < adds.len() {
        let slot = adds[i].0;
        let mut j = i;
        while j < adds.len() && adds[j].0 == slot {
            j += 1;
        }
        let rules: Vec<Rule> = adds[i..j].iter().map(|(_, r)| r.clone()).collect();
        let acl = current
            .get(slot)
            .cloned()
            .unwrap_or_else(jinjing_acl::Acl::permit_all);
        current.set(slot, acl.with_prepended(&rules));
        current_sets.remove(&slot);
        added_rules.extend_from_slice(&adds[i..j]);
        i = j;
    }
}

/// The [`FixStrategy::ExactBatch`] engine: one exact pass computes every
/// violation, one refinement pass partitions them into maximal uniform
/// neighborhoods, then placements are solved per neighborhood.
fn fix_batch(
    net: &Network,
    task: &Task,
    before: &AclConfig,
    after: &AclConfig,
    controls: &[ResolvedControl],
    allow: &[Slot],
    cfg: &FixConfig,
) -> Result<FixPlan, FixError> {
    let obs = cfg.check.obs.clone();
    let _fix_span = obs.span("fix");
    let mut phases = FixPhases::default();
    let mut current = after.clone();
    let mut neighborhoods: Vec<MatchSpec> = Vec::new();
    let mut added_rules: Vec<(Slot, Rule)> = Vec::new();
    let mut current_sets: HashMap<Slot, PacketSet> = HashMap::new();

    // Slot permit-set caches for cheap path-set evaluation.
    let mut slots_union = before.slots();
    for s in after.slots() {
        if !slots_union.contains(&s) {
            slots_union.push(s);
        }
    }
    let mut before_sets: HashMap<Slot, PacketSet> = HashMap::new();
    let mut after_sets: HashMap<Slot, PacketSet> = HashMap::new();
    for &slot in &slots_union {
        before_sets.insert(slot, before.slot_permit_set(slot));
        after_sets.insert(slot, after.slot_permit_set(slot));
    }
    let path_set = |sets: &HashMap<Slot, PacketSet>, path: &Path| -> PacketSet {
        let mut out = PacketSet::full();
        for slot in &path.slots {
            if let Some(s) = sets.get(slot) {
                out = out.intersect(s);
                if out.is_empty() {
                    break;
                }
            }
        }
        out
    };

    // The complete violation set.
    let sp = obs.span("fix.enumerate");
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(&task.scope) {
        universe = universe.union(&t);
    }
    let paths = net.all_paths_for_class(&task.scope, &universe);
    let mut violation_cubes = Vec::new();
    for path in &paths {
        let original = path_set(&before_sets, path);
        let desired = crate::control::desired_permit_set(controls, path, &original);
        let actual = path_set(&after_sets, path);
        let wrong = desired
            .subtract(&actual)
            .union(&actual.subtract(&desired))
            .intersect(&path.carried);
        violation_cubes.extend(wrong.cubes().iter().copied());
    }
    let violations = PacketSet::from_cubes_raw(violation_cubes).coalesce();
    phases.enumerate = sp.finish();

    if !violations.is_empty() {
        // Partition into maximal uniform neighborhoods (the batch analogue
        // of Eq. 6: every predicate of Eq. 6's conjunction refines).
        let sp = obs.span("fix.enlarge");
        let mut preds: Vec<PacketSet> = net
            .scope_predicates(&task.scope)
            .into_iter()
            .map(|(_, g)| g)
            .collect();
        for &slot in &slots_union {
            preds.push(before_sets[&slot].clone());
            preds.push(after_sets[&slot].clone());
        }
        preds.extend(crate::control::control_regions(controls));
        let preds = jinjing_acl::atoms::dedupe_predicates(preds);
        let atoms = jinjing_acl::atoms::refine(&violations, &preds, cfg.check.refine_limits)
            .map_err(FixError::Classes)?;
        phases.enlarge = sp.finish();
        if atoms.len() > cfg.max_neighborhoods {
            return Err(FixError::TooManyNeighborhoods);
        }
        // Per-atom placement jobs. Atoms are pairwise disjoint, so every
        // placement is solved against the pristine updated configuration —
        // in parallel — and the resulting rules are applied serially in
        // atom order, which is bit-for-bit the sequential repair (see
        // `solve_placement`). Workers measure their own solve time; the
        // driver folds the sum into `phases.place` and the `fix.place`
        // span, so the phase split stays a single timing source whatever
        // the thread count.
        struct AtomJob {
            region: PacketSet,
            h: Packet,
            specs: Vec<MatchSpec>,
        }
        let jobs: Vec<AtomJob> = atoms
            .into_iter()
            .map(|atom| {
                let region = atom.set;
                let h = region.sample().expect("atoms are non-empty");
                let specs = jinjing_acl::decompose::set_to_matchspecs(&region);
                AtomJob { region, h, specs }
            })
            .collect();
        let pool = Pool::new(jinjing_par::resolve_threads(cfg.check.threads));
        let base = &current;
        let solved: Vec<(Result<Vec<(Slot, Rule)>, FixError>, Duration)> =
            pool.par_map(&jobs, |_, job| {
                let t0 = Instant::now();
                let r = solve_placement(
                    net,
                    task,
                    before,
                    base,
                    controls,
                    allow,
                    cfg,
                    &job.specs,
                    &job.region,
                    &job.h,
                );
                (r, t0.elapsed())
            });
        let mut t_place = Duration::ZERO;
        let mut folded = 0u64;
        let mut first_err = None;
        for (job, (result, dt)) in jobs.iter().zip(solved) {
            t_place += dt;
            folded += 1;
            match result {
                Ok(adds) => {
                    neighborhoods.extend(job.specs.iter().copied());
                    apply_placement(&mut current, &mut current_sets, &mut added_rules, &adds);
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        phases.place = t_place;
        if folded > 0 {
            obs.record_span("fix.place", folded, t_place);
        }
        if let Some(e) = first_err {
            return Err(e);
        }
    }

    // Final certification.
    let report = check_configs(net, &task.scope, before, &current, controls, &cfg.check)?;
    debug_assert!(
        report.outcome.is_consistent(),
        "batch fix left an inconsistency behind"
    );
    let mut fixed = current;
    if cfg.simplify {
        let sp = obs.span("fix.simplify");
        for slot in fixed.slots() {
            if let Some(acl) = fixed.get(slot) {
                if acl.len() <= 128 {
                    let (s, _) = simplify(acl);
                    fixed.set(slot, s);
                }
            }
        }
        phases.simplify = sp.finish();
    }
    obs.counter_add("fix.neighborhoods", neighborhoods.len() as u64);
    obs.counter_add("fix.added_rules", added_rules.len() as u64);
    Ok(FixPlan {
        added_rules,
        fixed,
        neighborhoods,
        final_check: report,
        phases,
    })
}

/// Enlarge a counterexample into its neighborhood (Eq. 6): the largest
/// per-field prefix expansion whose packets all behave exactly like `h` —
/// same forwarding everywhere in scope, same decision under every ACL of
/// both configurations (supplied as precompiled permit sets), same control
/// regions — and that avoids previously excluded neighborhoods (keeping
/// neighborhoods pairwise disjoint).
#[allow(clippy::too_many_arguments)]
fn expand_neighborhood(
    net: &Network,
    task: &Task,
    slots: &[Slot],
    before_sets: &HashMap<Slot, PacketSet>,
    after_sets: &HashMap<Slot, PacketSet>,
    controls: &[ResolvedControl],
    excluded: &PacketSet,
    h: &Packet,
) -> MatchSpec {
    // Keep the region representation compact: side_of fragments it, and
    // with dozens of predicates the fragmentation compounds quadratically.
    let compact = |r: PacketSet| if r.cube_count() > 48 { r.coalesce() } else { r };
    // The equivalence region E of h. Refine from the full space first —
    // the ACL predicates shrink E to rule-sized regions quickly — and only
    // subtract the (potentially very fragmented) exclusion set at the end.
    let mut region = PacketSet::full();
    // ACL decision models of both configurations.
    for slot in slots {
        region = compact(side_of(region, &before_sets[slot], h));
        region = compact(side_of(region, &after_sets[slot], h));
    }
    // Forwarding predicates.
    for (_, g) in net.scope_predicates(&task.scope) {
        region = compact(side_of(region, &g, h));
        debug_assert!(region.contains(h));
    }
    // Control regions (§6: r functions participate in neighborhoods).
    for c in controls {
        region = compact(side_of(region, &c.region, h));
    }
    // Exclude already-repaired neighborhoods last (keeps neighborhoods
    // pairwise disjoint); counterexamples never lie inside them.
    region = compact(region.subtract(excluded));
    debug_assert!(region.contains(h));

    // Binary-search the largest prefix expansion per field.
    let mut cube = Cube::singleton(h);
    for f in Field::ALL {
        let w = f.width();
        let value = h.field(f);
        // Smallest prefix length (= widest interval) that stays within E.
        let mut lo = 0u32; // candidate length (widest)
        let mut hi = w; // current known-good length (narrowest)
        while lo < hi {
            let mid = (lo + hi) / 2;
            let candidate = cube.with(f, Interval::from_prefix(value, mid, w));
            if PacketSet::from_cube(candidate).is_subset(&region) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        cube = cube.with(f, Interval::from_prefix(value, hi, w));
    }
    cube_to_matchspec(&cube, h)
}

/// Keep the side of `pred` that contains `h`.
fn side_of(region: PacketSet, pred: &PacketSet, h: &Packet) -> PacketSet {
    if pred.contains(h) {
        region.intersect(pred)
    } else {
        region.subtract(pred)
    }
}

/// Convert a prefix-aligned cube back into a rule tuple. `h` supplies the
/// concrete bits for the prefix fields.
fn cube_to_matchspec(cube: &Cube, h: &Packet) -> MatchSpec {
    let prefix_len = |f: Field| -> u32 {
        let iv = cube.get(f);
        let span = iv.hi() - iv.lo() + 1;
        f.width() - span.trailing_zeros()
    };
    let src = IpPrefix::new(h.sip, prefix_len(Field::SrcIp));
    let dst = IpPrefix::new(h.dip, prefix_len(Field::DstIp));
    let sp = cube.get(Field::SrcPort);
    let dp = cube.get(Field::DstPort);
    let pr = cube.get(Field::Proto);
    MatchSpec {
        src,
        dst,
        sport: PortRange::new(sp.lo() as u16, sp.hi() as u16),
        dport: PortRange::new(dp.lo() as u16, dp.hi() as u16),
        proto: if pr.is_full(Field::Proto) {
            None
        } else {
            debug_assert_eq!(pr.lo(), pr.hi());
            Some(jinjing_acl::Proto::from_number(pr.lo() as u8))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_exact;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    fn fig1_task() -> (Figure1, Task) {
        let f = Figure1::new();
        // allow A:* and B:* in both directions (the paper's program).
        let mut allow = Vec::new();
        for name in ["A1", "A2", "A3", "A4", "B1", "B2"] {
            allow.push(Slot::ingress(f.iface(name)));
            allow.push(Slot::egress(f.iface(name)));
        }
        let task = Task {
            scope: f.scope(),
            allow,
            before: f.config.clone(),
            after: f.bad_update(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        (f, task)
    }

    #[test]
    fn running_example_fix_restores_consistency() {
        let (f, task) = fig1_task();
        let plan = fix(&f.net, &task, &FixConfig::default()).unwrap();
        // The repaired config must pass the exact checker.
        let verdict = check_exact(&f.net, &task.scope, &task.before, &plan.fixed, &[]);
        assert!(verdict.is_consistent(), "{verdict:?}");
        // The paper finds two neighborhoods: Traffic 1 and Traffic 2.
        assert_eq!(plan.neighborhoods.len(), 2, "{:?}", plan.neighborhoods);
        let mut tops: Vec<u32> = plan
            .neighborhoods
            .iter()
            .map(|m| m.dst.addr() >> 24)
            .collect();
        tops.sort();
        assert_eq!(tops, vec![1, 2]);
        for m in &plan.neighborhoods {
            assert_eq!(m.dst.len(), 8, "entire /8 identified: {m}");
            assert!(m.src.is_any());
            assert!(m.sport.is_any() && m.dport.is_any());
            assert!(m.proto.is_none());
        }
    }

    #[test]
    fn fix_only_touches_allowed_slots() {
        let (f, task) = fig1_task();
        let plan = fix(&f.net, &task, &FixConfig::default()).unwrap();
        for (slot, _) in &plan.added_rules {
            assert!(task.allow.contains(slot), "rule outside allow: {slot:?}");
        }
        // C and D keep their updated (permit-all) ACLs untouched.
        for name in ["C1", "D2"] {
            let slot = f.slot(name);
            assert!(plan
                .fixed
                .get(slot)
                .map_or(true, jinjing_acl::Acl::is_permit_all));
        }
    }

    #[test]
    fn minimal_change_touches_at_most_two_slots_per_neighborhood() {
        let (f, task) = fig1_task();
        let plan = fix(&f.net, &task, &FixConfig::default()).unwrap();
        // Traffic 1 needs one change (permit at A1); traffic 2 needs two
        // (permit at A1, deny on the B-branch or A2): ≤ 3 rules total.
        assert!(
            plan.added_rules.len() <= 3,
            "expected minimal plan, got {:?}",
            plan.added_rules
        );
    }

    #[test]
    fn descend_search_is_equally_minimal_with_fewer_solves() {
        let (f, task) = fig1_task();
        let ascend_cfg = FixConfig::default();
        let ascend = fix(&f.net, &task, &ascend_cfg).unwrap();
        let descend_cfg = FixConfig {
            minimize_search: MinimizeSearch::Descend,
            ..FixConfig::default()
        };
        let descend = fix(&f.net, &task, &descend_cfg).unwrap();
        // Same repair quality: consistent, same neighborhoods, same
        // (minimal) number of added rules — possibly a different but
        // equally minimal placement.
        for plan in [&ascend, &descend] {
            assert!(
                check_exact(&f.net, &task.scope, &task.before, &plan.fixed, &[]).is_consistent()
            );
        }
        assert_eq!(ascend.neighborhoods.len(), descend.neighborhoods.len());
        assert_eq!(ascend.added_rules.len(), descend.added_rules.len());
        // Same builder count, and the descent never solves more than the
        // ascent's bound-by-bound probe on this workload.
        let a = ascend_cfg.check.obs.snapshot();
        let d = descend_cfg.check.obs.snapshot();
        assert_eq!(
            a.counter("fix.place_builders"),
            d.counter("fix.place_builders"),
            "one builder per neighborhood under both searches"
        );
        assert!(
            d.counter("fix.place_solves") <= a.counter("fix.place_solves"),
            "descend ({}) must not out-solve ascend ({})",
            d.counter("fix.place_solves"),
            a.counter("fix.place_solves")
        );
    }

    #[test]
    fn simplify_shrinks_fixed_acls() {
        let (f, task) = fig1_task();
        let unsimplified = fix(
            &f.net,
            &task,
            &FixConfig {
                simplify: false,
                ..FixConfig::default()
            },
        )
        .unwrap();
        let simplified = fix(&f.net, &task, &FixConfig::default()).unwrap();
        let total = |c: &AclConfig| c.total_rules();
        assert!(total(&simplified.fixed) <= total(&unsimplified.fixed));
        // Both are consistent.
        for plan in [&unsimplified, &simplified] {
            assert!(
                check_exact(&f.net, &task.scope, &task.before, &plan.fixed, &[]).is_consistent()
            );
        }
    }

    #[test]
    fn consistent_update_needs_no_fixes() {
        let f = Figure1::new();
        let task = Task {
            scope: f.scope(),
            allow: vec![Slot::ingress(f.iface("A1"))],
            before: f.config.clone(),
            after: f.config.clone(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        let plan = fix(&f.net, &task, &FixConfig::default()).unwrap();
        assert!(plan.added_rules.is_empty());
        assert!(plan.neighborhoods.is_empty());
    }

    #[test]
    fn unfixable_when_allow_is_empty() {
        let (f, mut task) = fig1_task();
        task.allow.clear();
        let err = fix(&f.net, &task, &FixConfig::default()).unwrap_err();
        assert!(matches!(err, FixError::Unfixable { .. }), "{err}");
    }

    #[test]
    fn without_minimize_still_consistent() {
        let (f, task) = fig1_task();
        let plan = fix(
            &f.net,
            &task,
            &FixConfig {
                minimize_changes: false,
                ..FixConfig::default()
            },
        )
        .unwrap();
        assert!(check_exact(&f.net, &task.scope, &task.before, &plan.fixed, &[]).is_consistent());
    }

    #[test]
    fn neighborhoods_are_pairwise_disjoint() {
        let (f, task) = fig1_task();
        let plan = fix(&f.net, &task, &FixConfig::default()).unwrap();
        for (i, a) in plan.neighborhoods.iter().enumerate() {
            for b in &plan.neighborhoods[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::check::check_exact;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    fn fig1_task() -> (Figure1, Task) {
        let f = Figure1::new();
        let mut allow = Vec::new();
        for name in ["A1", "A2", "A3", "A4", "B1", "B2"] {
            allow.push(Slot::ingress(f.iface(name)));
            allow.push(Slot::egress(f.iface(name)));
        }
        let task = Task {
            scope: f.scope(),
            allow,
            before: f.config.clone(),
            after: f.bad_update(),
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        (f, task)
    }

    #[test]
    fn batch_fix_repairs_the_running_example() {
        let (f, task) = fig1_task();
        let cfg = FixConfig {
            strategy: FixStrategy::ExactBatch,
            ..FixConfig::default()
        };
        let plan = fix(&f.net, &task, &cfg).unwrap();
        let verdict = check_exact(&f.net, &task.scope, &task.before, &plan.fixed, &[]);
        assert!(verdict.is_consistent(), "{verdict:?}");
        // Same two traffic classes identified (possibly as tuple lists).
        let mut tops: Vec<u32> = plan
            .neighborhoods
            .iter()
            .map(|m| m.dst.addr() >> 24)
            .collect();
        tops.sort();
        tops.dedup();
        assert_eq!(tops, vec![1, 2]);
    }

    #[test]
    fn batch_and_cegis_agree_on_consistency_and_allow() {
        let (f, task) = fig1_task();
        for strategy in [FixStrategy::IterativeCegis, FixStrategy::ExactBatch] {
            let cfg = FixConfig {
                strategy,
                ..FixConfig::default()
            };
            let plan = fix(&f.net, &task, &cfg).unwrap();
            assert!(plan.final_check.outcome.is_consistent(), "{strategy:?}");
            for (slot, _) in &plan.added_rules {
                assert!(task.allow.contains(slot), "{strategy:?} broke allow");
            }
        }
    }

    #[test]
    fn batch_reports_unfixable() {
        let (f, mut task) = fig1_task();
        task.allow.clear();
        let cfg = FixConfig {
            strategy: FixStrategy::ExactBatch,
            ..FixConfig::default()
        };
        let err = fix(&f.net, &task, &cfg).unwrap_err();
        assert!(matches!(err, FixError::Unfixable { .. }), "{err}");
    }

    #[test]
    fn batch_on_consistent_update_is_a_no_op() {
        let (f, mut task) = fig1_task();
        task.after = task.before.clone();
        let cfg = FixConfig {
            strategy: FixStrategy::ExactBatch,
            ..FixConfig::default()
        };
        let plan = fix(&f.net, &task, &cfg).unwrap();
        assert!(plan.added_rules.is_empty());
        assert!(plan.neighborhoods.is_empty());
    }
}
