//! Desired-reachability controls (§6).
//!
//! A `control` statement rewrites the *desired* decision of matching paths:
//! `isolate` forces deny, `open` forces permit, and `maintain` pins the
//! original decision (shielding traffic from later, lower-priority
//! statements). Priority is specification order — the first matching
//! statement wins.
//!
//! Controls never change how the *updated* configuration is modeled
//! (`c'_p` is built normally); they transform the reference side `c_p`.

use jinjing_acl::PacketSet;
use jinjing_lai::{ControlVerb, HeaderSel};
use jinjing_net::fib::{prefix_set, src_prefix_set};
use jinjing_net::{IfaceId, Path};
use std::collections::HashSet;

/// A control statement bound to concrete border interfaces and an exact
/// packet region.
#[derive(Debug, Clone)]
pub struct ResolvedControl {
    /// Ingress endpoints the statement applies to.
    pub from: HashSet<IfaceId>,
    /// Egress endpoints.
    pub to: HashSet<IfaceId>,
    /// The verb.
    pub verb: ControlVerb,
    /// The traffic region (exact set form of the `h` selector).
    pub region: PacketSet,
}

impl ResolvedControl {
    /// Does this control apply to a path (by its endpoints)?
    pub fn applies_to(&self, path: &Path) -> bool {
        self.from.contains(&path.ingress()) && self.to.contains(&path.egress())
    }
}

/// Convert a header selector into its exact packet region.
pub fn header_region(sel: &HeaderSel) -> PacketSet {
    match sel {
        HeaderSel::Src(p) => src_prefix_set(p),
        HeaderSel::Dst(p) => prefix_set(p),
        HeaderSel::All => PacketSet::full(),
    }
}

/// The desired decision of `path` on a *control-uniform* class (every
/// control region either contains the class or is disjoint from it), given
/// the original decision. Walks controls in priority order.
pub fn desired_decision(
    controls: &[ResolvedControl],
    path: &Path,
    class: &PacketSet,
    original: bool,
) -> bool {
    for c in controls {
        if !c.applies_to(path) {
            continue;
        }
        if class.is_subset(&c.region) {
            return match c.verb {
                ControlVerb::Isolate => false,
                ControlVerb::Open => true,
                ControlVerb::Maintain => original,
            };
        }
        debug_assert!(
            !class.intersects(&c.region),
            "class is not uniform w.r.t. a control region"
        );
    }
    original
}

/// The desired permit-*set* of a path: the exact set transformation of the
/// original permit set under the controls (used by the set-algebra
/// reference checker). Applies controls lowest-priority-first so earlier
/// statements overwrite later ones.
pub fn desired_permit_set(
    controls: &[ResolvedControl],
    path: &Path,
    original: &PacketSet,
) -> PacketSet {
    let mut desired = original.clone();
    for c in controls.iter().rev() {
        if !c.applies_to(path) {
            continue;
        }
        desired = match c.verb {
            ControlVerb::Isolate => desired.subtract(&c.region),
            ControlVerb::Open => desired.union(&c.region),
            ControlVerb::Maintain => {
                // Inside the region, restore the original decision.
                desired
                    .subtract(&c.region)
                    .union(&original.intersect(&c.region))
            }
        };
    }
    desired
}

/// Per-class view of the controls: the (class ⊆ region) containment tests
/// are hoisted out of the per-path loops — with hundreds of classes, paths
/// and controls, recomputing them per (class, path, control) dominates
/// everything else.
#[derive(Debug)]
pub struct ClassControls<'a> {
    controls: &'a [ResolvedControl],
    contained: Vec<bool>,
}

impl<'a> ClassControls<'a> {
    /// Evaluate containment of `class` in every control region once.
    pub fn new(controls: &'a [ResolvedControl], class: &PacketSet) -> ClassControls<'a> {
        let contained = controls
            .iter()
            .map(|c| {
                let inside = class.is_subset(&c.region);
                debug_assert!(
                    inside || !class.intersects(&c.region),
                    "class is not uniform w.r.t. a control region"
                );
                inside
            })
            .collect();
        ClassControls {
            controls,
            contained,
        }
    }

    /// The verb of the first control applying to this path and containing
    /// the class, if any.
    pub fn verb_for(&self, path: &Path) -> Option<ControlVerb> {
        self.controls
            .iter()
            .zip(&self.contained)
            .find(|(c, &inside)| inside && c.applies_to(path))
            .map(|(c, _)| c.verb)
    }

    /// Desired decision of `path` on the class given the original decision.
    pub fn desired(&self, path: &Path, original: bool) -> bool {
        match self.verb_for(path) {
            Some(ControlVerb::Isolate) => false,
            Some(ControlVerb::Open) => true,
            Some(ControlVerb::Maintain) | None => original,
        }
    }
}

/// The control regions relevant to a scope — these join the refinement
/// predicates when deriving FECs/AECs under controls, guaranteeing
/// class-uniformity for [`desired_decision`].
pub fn control_regions(controls: &[ResolvedControl]) -> Vec<PacketSet> {
    controls.iter().map(|c| c.region.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::parse::parse_prefix;
    use jinjing_net::{Dir, Slot};

    fn path(ingress: u32, egress: u32) -> Path {
        Path {
            slots: vec![
                Slot {
                    iface: IfaceId(ingress),
                    dir: Dir::In,
                },
                Slot {
                    iface: IfaceId(egress),
                    dir: Dir::Out,
                },
            ],
            carried: PacketSet::full(),
        }
    }

    fn ctrl(verb: ControlVerb, region: PacketSet, from: u32, to: u32) -> ResolvedControl {
        ResolvedControl {
            from: HashSet::from([IfaceId(from)]),
            to: HashSet::from([IfaceId(to)]),
            verb,
            region,
        }
    }

    fn dst8(n: u32) -> PacketSet {
        prefix_set(&parse_prefix(&format!("{n}.0.0.0/8")).unwrap())
    }

    #[test]
    fn no_controls_keeps_original() {
        let p = path(0, 1);
        assert!(desired_decision(&[], &p, &dst8(1), true));
        assert!(!desired_decision(&[], &p, &dst8(1), false));
    }

    #[test]
    fn isolate_and_open_override() {
        let p = path(0, 1);
        let cs = vec![
            ctrl(ControlVerb::Isolate, dst8(1), 0, 1),
            ctrl(ControlVerb::Open, dst8(2), 0, 1),
        ];
        assert!(!desired_decision(&cs, &p, &dst8(1), true));
        assert!(desired_decision(&cs, &p, &dst8(2), false));
        assert!(desired_decision(&cs, &p, &dst8(3), true)); // untouched
    }

    #[test]
    fn endpoint_mismatch_ignores_control() {
        let cs = vec![ctrl(ControlVerb::Isolate, PacketSet::full(), 0, 1)];
        let other = path(0, 2);
        assert!(desired_decision(&cs, &other, &dst8(1), true));
        assert!(cs[0].applies_to(&path(0, 1)));
        assert!(!cs[0].applies_to(&other));
    }

    #[test]
    fn maintain_shields_from_later_isolate() {
        // §6's example: maintain dst 7/8, then isolate all.
        let p = path(0, 1);
        let cs = vec![
            ctrl(ControlVerb::Maintain, dst8(7), 0, 1),
            ctrl(ControlVerb::Isolate, PacketSet::full(), 0, 1),
        ];
        // 7/8 keeps its original decision either way.
        assert!(desired_decision(&cs, &p, &dst8(7), true));
        assert!(!desired_decision(&cs, &p, &dst8(7), false));
        // Everything else is isolated.
        assert!(!desired_decision(&cs, &p, &dst8(3), true));
    }

    #[test]
    fn desired_set_matches_decision_semantics() {
        let p = path(0, 1);
        let cs = vec![
            ctrl(ControlVerb::Maintain, dst8(7), 0, 1),
            ctrl(ControlVerb::Isolate, PacketSet::full(), 0, 1),
        ];
        // Original permit set: 3/8 ∪ 7/8.
        let original = dst8(3).union(&dst8(7));
        let desired = desired_permit_set(&cs, &p, &original);
        // 7/8 maintained (permitted), 3/8 isolated.
        assert!(desired.same_set(&dst8(7)));
        // And per-class decisions agree with the set.
        for (class, orig_in) in [(dst8(7), true), (dst8(3), true), (dst8(4), false)] {
            let dec = desired_decision(&cs, &p, &class, orig_in);
            assert_eq!(dec, class.is_subset(&desired), "class decision vs set");
        }
    }

    #[test]
    fn open_expands_set() {
        let p = path(0, 1);
        let cs = vec![ctrl(ControlVerb::Open, dst8(6), 0, 1)];
        let original = dst8(3);
        let desired = desired_permit_set(&cs, &p, &original);
        assert!(desired.same_set(&dst8(3).union(&dst8(6))));
    }

    #[test]
    fn header_region_forms() {
        let src = header_region(&HeaderSel::Src(parse_prefix("10.0.0.0/8").unwrap()));
        let dst = header_region(&HeaderSel::Dst(parse_prefix("10.0.0.0/8").unwrap()));
        let all = header_region(&HeaderSel::All);
        assert!(!src.same_set(&dst));
        assert!(all.same_set(&PacketSet::full()));
    }
}
