//! The **generate** primitive (§5): synthesizing ACLs from scratch.
//!
//! Pipeline, following the paper's workflow:
//!
//! 1. **Derive ACL equivalence classes** (§5.1): refine the entering
//!    traffic by the permit-set of every ACL in the scope (plus control
//!    regions, §6). All packets of an AEC receive identical decisions from
//!    every existing ACL.
//! 2. **Solve AECs** (§5.2, Eq. 10): per AEC, one boolean decision variable
//!    per target slot, one constraint per *topological* path in the scope
//!    (`c'_p ⇔ desired c_p`), solved by the CDCL engine.
//! 3. **Split unsolved AECs into DECs** (§5.3): refine the AEC by the
//!    forwarding predicates and re-solve per DEC with the constraints
//!    restricted to the paths actually carrying that DEC.
//! 4. **Synthesize ACLs** (§5.4): sequence-encode each AEC against the
//!    existing ACLs' (optionally grouped, §5.5) rule lists, sort rows,
//!    compute overlap regions, fill in the solved decisions, and emit
//!    well-formed prefix/range rules (with per-DEC insertions where an AEC
//!    was split). With [`GenerateConfig::optimize`], rule grouping shrinks
//!    the row count and the final ACLs are simplified
//!    (decision-preserving), reproducing the §5.5 run-time/length savings.

use crate::control::control_regions;
use crate::task::Task;
use jinjing_acl::atoms::{refine, refine_class, ClassExplosion, RefineLimits};
use jinjing_acl::decompose::set_to_matchspecs;
use jinjing_acl::simplify::simplify;
use jinjing_acl::{Acl, Action, PacketSet, Rule};
use jinjing_net::{AclConfig, Network, Path, Slot};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::lit::Lit;
use jinjing_solver::CircuitBuilder;
use std::collections::HashMap;
use std::time::Duration;

/// Tunables for generate.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Apply the §5.5 optimizations (rule grouping before sequence
    /// encoding; decision-preserving simplification of the output).
    pub optimize: bool,
    /// Equivalence-class caps.
    pub refine_limits: RefineLimits,
    /// Worker threads for the per-AEC solve fan-out (Eq. 10). `0` means
    /// "auto": consult `JINJING_THREADS`, defaulting to 1 (serial — the
    /// exact historical code path). Reports are byte-identical for every
    /// value (see `jinjing-par`'s determinism contract).
    pub threads: usize,
    /// Observability sink: phase spans, solver histograms, events. A fresh
    /// (private) collector by default; the engine shares one per run.
    pub obs: jinjing_obs::Collector,
}

impl Default for GenerateConfig {
    fn default() -> GenerateConfig {
        GenerateConfig {
            optimize: true,
            refine_limits: RefineLimits::default(),
            threads: 0,
            obs: jinjing_obs::Collector::new(),
        }
    }
}

/// Why generate failed.
#[derive(Debug)]
pub enum GenerateError {
    /// Even at DEC granularity no decision assignment satisfies the intent.
    NoSolution {
        /// A witness packet of the unsolvable class.
        witness: jinjing_acl::Packet,
    },
    /// Equivalence-class explosion.
    Classes(ClassExplosion),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::NoSolution { witness } => {
                write!(f, "no valid ACL placement for the class of {witness}")
            }
            GenerateError::Classes(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<ClassExplosion> for GenerateError {
    fn from(e: ClassExplosion) -> GenerateError {
        GenerateError::Classes(e)
    }
}

/// Per-phase wall-clock split (the three bars of Figure 4c/4d).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Deriving ACL equivalence classes.
    pub derive_aec: Duration,
    /// Solving AECs (and DECs where needed).
    pub solve: Duration,
    /// Emitting ACL rules.
    pub synthesize: Duration,
}

/// Result of a generate run.
#[derive(Debug, Clone)]
pub struct GenerateReport {
    /// The configuration with synthesized ACLs installed at the targets.
    pub generated: AclConfig,
    /// Number of ACL equivalence classes.
    pub aec_count: usize,
    /// AECs that had to be split into DECs.
    pub aecs_split: usize,
    /// Total dataplane equivalence classes created.
    pub dec_count: usize,
    /// Sequence-encoding rows produced (the §5.5 grouping metric).
    pub rows: usize,
    /// Rules emitted before simplification.
    pub rules_emitted: usize,
    /// Rules in the final ACLs.
    pub rules_final: usize,
    /// Wall-clock per phase.
    pub phases: PhaseTimes,
}

/// One solved decision unit: a class and its decision per target slot.
struct Unit {
    region: PacketSet,
    decisions: HashMap<Slot, bool>,
}

/// Run generate on a resolved task. Targets are the task's `allow` slots;
/// the task's `after` configuration (modifies applied — e.g. migration
/// sources already cleaned) is the baseline the synthesized ACLs extend.
pub fn generate(
    net: &Network,
    task: &Task,
    cfg: &GenerateConfig,
) -> Result<GenerateReport, GenerateError> {
    let scope = &task.scope;
    let targets: Vec<Slot> = {
        let mut t = task.allow.clone();
        t.sort();
        t.dedup();
        t
    };

    let _gen_span = cfg.obs.span("generate");

    // ---- Phase 1: derive AECs. ----
    let sp = cfg.obs.span("generate.aec");
    let mut universe = PacketSet::empty();
    for (_, t) in net.entering_traffic(scope) {
        universe = universe.union(&t);
    }
    let mut predicates: Vec<PacketSet> = task
        .before
        .slots()
        .into_iter()
        .map(|s| task.before.slot_permit_set(s))
        .collect();
    predicates.extend(control_regions(&task.controls));
    let predicates = jinjing_acl::atoms::dedupe_predicates(predicates);
    let aecs = refine(&universe, &predicates, cfg.refine_limits)?;
    let derive_aec = sp.finish();
    cfg.obs
        .histogram_record("generate.aec_count", aecs.len() as u64);

    // ---- Phase 2: solve AECs (DEC-split on unsat). ----
    let sp = cfg.obs.span("generate.solve");
    // Topological paths: every path some entering packet can take.
    let all_paths = net.all_paths_for_class(scope, &universe);
    let fwd_predicates: Vec<PacketSet> = jinjing_acl::atoms::dedupe_predicates(
        net.scope_predicates(scope)
            .into_iter()
            .map(|(_, g)| g)
            .collect(),
    );
    // AEC-level solves are independent of one another (Eq. 10 constrains
    // each class in isolation), so the sweep fans out across the worker
    // pool; results fold back in AEC order. Each worker's solver telemetry
    // lands in the shared collector directly — counters and histograms are
    // commutative aggregates, so the totals are schedule-independent. DEC
    // refinement of the unsat residue (§5.3) stays serial: splits are rare
    // and each is cheap relative to the AEC sweep.
    let pool = jinjing_par::Pool::new(jinjing_par::resolve_threads(cfg.threads));
    let aec_solutions: Vec<Option<HashMap<Slot, bool>>> = pool.par_map(&aecs, |_, aec| {
        solve_class(net, task, cfg, &targets, &all_paths, &aec.set, false)
    });
    let mut units: Vec<(usize, Vec<Unit>)> = Vec::new(); // (aec index, units)
    let mut aecs_split = 0usize;
    let mut dec_count = 0usize;
    for (ai, (aec, solution)) in aecs.iter().zip(aec_solutions).enumerate() {
        match solution {
            Some(decisions) => units.push((
                ai,
                vec![Unit {
                    region: aec.set.clone(),
                    decisions,
                }],
            )),
            None => {
                // DEC refinement (§5.3).
                aecs_split += 1;
                let decs = refine_class(&aec.set, &fwd_predicates, cfg.refine_limits)?;
                let mut dec_units = Vec::with_capacity(decs.len());
                for dec in decs {
                    dec_count += 1;
                    match solve_class(net, task, cfg, &targets, &all_paths, &dec.set, true) {
                        Some(decisions) => dec_units.push(Unit {
                            region: dec.set,
                            decisions,
                        }),
                        None => {
                            return Err(GenerateError::NoSolution {
                                witness: dec.set.sample().expect("classes are non-empty"),
                            })
                        }
                    }
                }
                units.push((ai, dec_units));
            }
        }
    }
    let solve = sp.finish();

    // ---- Phase 3+4: sequence encoding and rule emission. ----
    let sp = cfg.obs.span("generate.synthesize");
    // Encoding slots: every slot holding an ACL before the update (the
    // "source interfaces" of Table 4's sequence encoding).
    let encoding_slots: Vec<Slot> = task.before.slots();
    // Grouped (or singleton) effective rule regions per encoding slot.
    let slot_groups: Vec<Vec<PacketSet>> = encoding_slots
        .iter()
        .map(|&s| {
            let acl = task.before.get(s).expect("configured slot");
            group_effective_regions(acl, cfg.optimize)
        })
        .collect();

    // Rows (§5.4 Step 1): per AEC, the cartesian combinations of hit
    // groups per slot; row regions partition each AEC.
    struct Row {
        encoding: Vec<usize>,
        region: PacketSet,
        aec_index: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (ai, aec) in aecs.iter().enumerate() {
        let mut partial: Vec<(Vec<usize>, PacketSet)> = vec![(Vec::new(), aec.set.clone())];
        for groups in &slot_groups {
            let mut next = Vec::new();
            for (enc, region) in partial {
                for (gi, g) in groups.iter().enumerate() {
                    let inter = region.intersect(g);
                    if inter.is_empty() {
                        continue;
                    }
                    let mut e = enc.clone();
                    e.push(gi);
                    next.push((e, inter));
                }
                // Packets falling through to the default action form a
                // virtual last group.
                let mut rest = region.clone();
                for g in groups {
                    rest = rest.subtract(g);
                    if rest.is_empty() {
                        break;
                    }
                }
                if !rest.is_empty() {
                    let mut e = enc;
                    e.push(groups.len());
                    next.push((e, rest));
                }
            }
            partial = next;
        }
        for (encoding, region) in partial {
            rows.push(Row {
                encoding,
                region,
                aec_index: ai,
            });
        }
    }
    rows.sort_by(|a, b| a.encoding.cmp(&b.encoding));
    let row_count = rows.len();

    // Emit per-target ACLs.
    //
    // Unoptimized (paper-table) mode emits one rule batch per sorted row ×
    // decision unit — including the redundant explicit permits of Table 4b.
    // Optimized mode exploits that the decision units partition the
    // universe: only the *deny* side needs rules (the ACL default is
    // permit), and the whole deny region is coalesced before decomposition,
    // which is what collapses the rule count by orders of magnitude (§5.5
    // "generating fewer ACL rules"). Both modes are exact; the equivalence
    // is asserted by the property tests.
    let mut generated = task.after.clone();
    let mut rules_emitted = 0usize;
    let mut rules_final = 0usize;
    let unit_map: HashMap<usize, &Vec<Unit>> = units.iter().map(|(ai, us)| (*ai, us)).collect();
    for &target in &targets {
        let mut acl = if cfg.optimize {
            // Units are pairwise disjoint (they partition the universe), so
            // assemble the deny region without quadratic union pruning.
            let mut deny_cubes = Vec::new();
            for (_, us) in &units {
                for unit in us {
                    if !unit.decisions[&target] {
                        deny_cubes.extend(unit.region.cubes().iter().copied());
                    }
                }
            }
            let deny = PacketSet::from_cubes_raw(deny_cubes);
            let rules: Vec<Rule> = set_to_matchspecs(&deny)
                .into_iter()
                .map(|m| Rule::new(Action::Deny, m))
                .collect();
            Acl::new(rules, Action::Permit)
        } else {
            let mut rules: Vec<Rule> = Vec::new();
            for row in &rows {
                let row_units = unit_map[&row.aec_index];
                for unit in row_units {
                    let region = if row_units.len() == 1 {
                        row.region.clone()
                    } else {
                        row.region.intersect(&unit.region)
                    };
                    if region.is_empty() {
                        continue;
                    }
                    let action = Action::from_bool(unit.decisions[&target]);
                    for m in set_to_matchspecs(&region) {
                        rules.push(Rule::new(action, m));
                    }
                }
            }
            Acl::new(rules, Action::Permit)
        };
        rules_emitted += acl.len();
        // Final decision-preserving cleanup. The coalesced deny-set
        // emission is already near-minimal, so the exact (quadratic)
        // redundancy elimination is only worth running on short ACLs.
        if cfg.optimize && acl.len() <= 24 {
            let (s, _) = simplify(&acl);
            acl = s;
        }
        rules_final += acl.len();
        generated.set(target, acl);
    }
    let synthesize = sp.finish();
    cfg.obs.event(
        jinjing_obs::Level::Info,
        "generate.done",
        &format!(
            "{} AECs ({} split, {} DECs), {} rules emitted, {} final",
            aecs.len(),
            aecs_split,
            dec_count,
            rules_emitted,
            rules_final
        ),
    );

    Ok(GenerateReport {
        generated,
        aec_count: aecs.len(),
        aecs_split,
        dec_count,
        rows: row_count,
        rules_emitted,
        rules_final,
        phases: PhaseTimes {
            derive_aec,
            solve,
            synthesize,
        },
    })
}

/// Solve the placement problem (Eq. 10) for one class. At AEC level
/// (`restrict_paths == false`) every topological path constrains the class;
/// at DEC level only the paths carrying it do. Returns the decision per
/// target slot, or `None` when unsatisfiable.
fn solve_class(
    _net: &Network,
    task: &Task,
    cfg: &GenerateConfig,
    targets: &[Slot],
    all_paths: &[Path],
    class: &PacketSet,
    restrict_paths: bool,
) -> Option<HashMap<Slot, bool>> {
    let h = class.sample().expect("non-empty class");
    let mut builder = CircuitBuilder::new();
    builder.set_obs(cfg.obs.clone());
    let vars: HashMap<Slot, Lit> = targets.iter().map(|&s| (s, builder.input())).collect();
    let class_controls = crate::control::ClassControls::new(&task.controls, class);
    for p in all_paths {
        if restrict_paths && !class.intersects(&p.carried) {
            continue;
        }
        let original = task.before.path_permits(p, &h);
        let desired = class_controls.desired(p, original);
        // c'_p: constants for non-target slots, variables for targets.
        let mut lits: Vec<Lit> = Vec::new();
        let mut const_false = false;
        for &slot in &p.slots {
            if let Some(&v) = vars.get(&slot) {
                lits.push(v);
            } else if !task.after.slot_permits(slot, &h) {
                const_false = true;
                break;
            }
        }
        if const_false {
            if desired {
                return None; // path is forced deny but must permit
            }
            continue; // already denied as desired
        }
        let conj = builder.and(&lits);
        builder.assert(if desired { conj } else { !conj });
    }
    if builder.solve() != SolveResult::Sat {
        return None;
    }
    // Bias unconstrained decisions toward permit (what operators — and
    // Table 4b — prefer): greedily pin each target to permit when some
    // model still allows it.
    let mut pinned: Vec<Lit> = Vec::new();
    let mut sorted_targets = targets.to_vec();
    sorted_targets.sort();
    for &s in &sorted_targets {
        let v = vars[&s];
        let mut attempt = pinned.clone();
        attempt.push(v);
        if builder.solve_with(&attempt) == SolveResult::Sat {
            pinned.push(v);
        } else {
            pinned.push(!v);
        }
    }
    let r = builder.solve_with(&pinned);
    debug_assert_eq!(r, SolveResult::Sat);
    Some(
        sorted_targets
            .iter()
            .map(|&s| (s, builder.model_value(vars[&s])))
            .collect(),
    )
}

/// The effective (first-match) regions of an ACL's rules, optionally
/// grouping consecutive same-action rules (§5.5 "Grouping ACL rules before
/// sequence encoding"). Regions are disjoint and ordered by priority; the
/// default action's region is *not* included (it is the virtual last
/// group).
fn group_effective_regions(acl: &Acl, group: bool) -> Vec<PacketSet> {
    let mut regions: Vec<PacketSet> = Vec::new();
    let mut remaining = PacketSet::full();
    let mut last_action: Option<Action> = None;
    for r in acl.rules() {
        if remaining.is_empty() {
            break;
        }
        let m = PacketSet::from_cube(r.matches.cube());
        let eff = remaining.intersect(&m);
        remaining = remaining.subtract(&m);
        if eff.is_empty() {
            continue;
        }
        if group && last_action == Some(r.action) {
            let last = regions.last_mut().expect("grouping onto existing region");
            *last = last.union(&eff);
        } else {
            regions.push(eff);
            last_action = Some(r.action);
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_exact;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    /// The §5 migration task: remove ACLs from S = {A1, D2}, generate at
    /// T = {C1, C2, D1}.
    fn migration_task(f: &Figure1) -> Task {
        let mut after = f.config.clone();
        after.set(f.slot("A1"), Acl::permit_all());
        after.set(f.slot("D2"), Acl::permit_all());
        Task {
            scope: f.scope(),
            allow: vec![f.slot("C1"), f.slot("C2"), f.slot("D1")],
            before: f.config.clone(),
            after,
            modified: vec![f.slot("A1"), f.slot("D2")],
            controls: Vec::new(),
            command: Command::Generate,
        }
    }

    #[test]
    fn table3_aec_structure() {
        // Four AECs: {1,2}, {3,4,5}, {6}, {7}.
        let f = Figure1::new();
        let task = migration_task(&f);
        let report = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        assert_eq!(report.aec_count, 4, "Table 3 has four classes");
    }

    #[test]
    fn migration_preserves_reachability() {
        let f = Figure1::new();
        let task = migration_task(&f);
        for optimize in [false, true] {
            let cfg = GenerateConfig {
                optimize,
                ..GenerateConfig::default()
            };
            let report = generate(&f.net, &task, &cfg).unwrap();
            let verdict = check_exact(&f.net, &task.scope, &task.before, &report.generated, &[]);
            assert!(verdict.is_consistent(), "optimize={optimize}: {verdict:?}");
        }
    }

    #[test]
    fn aec_1_requires_dec_split() {
        // §5.3: [1]AEC (traffic 1-2) has no AEC-level solution because of
        // the ⟨A1,A3,C1,C3⟩ vs ⟨A1,A3,C1,C4,D2,D3⟩ conflict at C1.
        let f = Figure1::new();
        let task = migration_task(&f);
        let report = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        assert!(report.aecs_split >= 1, "at least [1]AEC splits");
        assert!(
            report.dec_count >= 2,
            "[1]AEC splits into [1]DEC and [2]DEC"
        );
    }

    #[test]
    fn synthesized_decisions_match_table_4b() {
        use jinjing_acl::Packet;
        let f = Figure1::new();
        let task = migration_task(&f);
        let report = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        let g = &report.generated;
        let pkt = |n: u32| Packet::to_dst(n << 24 | 1);
        // C1: deny 6, deny 7, permit 1, permit 2, permit rest.
        let c1 = g.get(f.slot("C1")).unwrap();
        assert!(!c1.permits(&pkt(6)));
        assert!(!c1.permits(&pkt(7)));
        for n in [1, 2, 3, 4, 5] {
            assert!(c1.permits(&pkt(n)), "C1 permits traffic {n}");
        }
        // D1: deny 6, permit everything else.
        let d1 = g.get(f.slot("D1")).unwrap();
        assert!(!d1.permits(&pkt(6)));
        for n in [1, 2, 3, 4, 5, 7] {
            assert!(d1.permits(&pkt(n)), "D1 permits traffic {n}");
        }
        // C2: deny 6 and deny traffic 2 (the [2]DEC insertion); permit 1.
        let c2 = g.get(f.slot("C2")).unwrap();
        assert!(!c2.permits(&pkt(6)));
        assert!(!c2.permits(&pkt(2)), "C2 must deny the [2]DEC");
        assert!(c2.permits(&pkt(1)));
    }

    #[test]
    fn optimization_reduces_rule_count() {
        let f = Figure1::new();
        let task = migration_task(&f);
        let base = generate(
            &f.net,
            &task,
            &GenerateConfig {
                optimize: false,
                ..GenerateConfig::default()
            },
        )
        .unwrap();
        let opt = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        assert!(
            opt.rules_final <= base.rules_final,
            "optimized {} vs base {}",
            opt.rules_final,
            base.rules_final
        );
        assert!(opt.rows <= base.rows);
    }

    #[test]
    fn generate_with_isolate_control() {
        use crate::control::ResolvedControl;
        use jinjing_lai::ControlVerb;
        use std::collections::HashSet;
        // Scenario-1 style: isolate traffic 3 between A1 and D3 by
        // generating at D1 (the only hop on its path we allow).
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Isolate,
            region: f.traffic(3),
        }];
        let task = Task {
            scope: f.scope(),
            allow: vec![f.slot("D1"), f.slot("D2")],
            before: f.config.clone(),
            after: f.config.clone(),
            modified: Vec::new(),
            controls: controls.clone(),
            command: Command::Generate,
        };
        let report = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        let verdict = check_exact(
            &f.net,
            &task.scope,
            &task.before,
            &report.generated,
            &controls,
        );
        assert!(verdict.is_consistent(), "{verdict:?}");
        // Traffic 3 is now denied at D1.
        let d1 = report.generated.get(f.slot("D1")).unwrap();
        assert!(!d1.permits(&jinjing_acl::Packet::to_dst(3 << 24)));
    }

    #[test]
    fn impossible_intent_reports_no_solution() {
        use crate::control::ResolvedControl;
        use jinjing_lai::ControlVerb;
        use std::collections::HashSet;
        // Isolate traffic 3 A1→D3 but only allow changes at C1 — traffic 3
        // never crosses C1 (it flows A1→A4→D1→D3), so no placement works.
        let f = Figure1::new();
        let controls = vec![ResolvedControl {
            from: HashSet::from([f.iface("A1")]),
            to: HashSet::from([f.iface("D3")]),
            verb: ControlVerb::Isolate,
            region: f.traffic(3),
        }];
        let task = Task {
            scope: f.scope(),
            allow: vec![f.slot("C1")],
            before: f.config.clone(),
            after: f.config.clone(),
            modified: Vec::new(),
            controls,
            command: Command::Generate,
        };
        let err = generate(&f.net, &task, &GenerateConfig::default()).unwrap_err();
        match err {
            GenerateError::NoSolution { witness } => {
                assert_eq!(witness.dip >> 24, 3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn grouping_merges_consecutive_same_action_rules() {
        let acl = jinjing_acl::AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .permit_dst("3.0.0.0/8")
            .deny_dst("4.0.0.0/8")
            .build();
        let grouped = group_effective_regions(&acl, true);
        let plain = group_effective_regions(&acl, false);
        assert_eq!(grouped.len(), 3); // {1,2} | {3} | {4}
        assert_eq!(plain.len(), 4);
        // Same coverage either way.
        let cover = |rs: &[PacketSet]| rs.iter().fold(PacketSet::empty(), |a, b| a.union(b));
        assert!(cover(&grouped).same_set(&cover(&plain)));
    }
}

#[cfg(test)]
mod table4_rows {
    use super::*;
    use crate::figure1::Figure1;
    use jinjing_lai::Command;

    /// §5.4 Table 4a/4b: without grouping, the sequence encoding of the
    /// Figure 1 migration produces exactly the paper's five rows —
    /// `[6]` = 123, `[7]` = 213, `[1]` = 221 and 222 (two rows, one per
    /// hit rule in D2), `[3]` = 223.
    #[test]
    fn figure1_migration_has_five_ungrouped_rows() {
        let f = Figure1::new();
        let mut after = f.config.clone();
        after.set(f.slot("A1"), Acl::permit_all());
        after.set(f.slot("D2"), Acl::permit_all());
        let task = Task {
            scope: f.scope(),
            allow: vec![f.slot("C1"), f.slot("C2"), f.slot("D1")],
            before: f.config.clone(),
            after,
            modified: vec![f.slot("A1"), f.slot("D2")],
            controls: Vec::new(),
            command: Command::Generate,
        };
        let cfg = GenerateConfig {
            optimize: false,
            ..GenerateConfig::default()
        };
        let report = generate(&f.net, &task, &cfg).unwrap();
        assert_eq!(report.rows, 5, "Table 4 lists five sequence-encoding rows");
        // Grouping (the §5.5 optimization) merges D2's two denies: 4 rows.
        let opt = generate(&f.net, &task, &GenerateConfig::default()).unwrap();
        assert_eq!(opt.rows, 4);
    }
}
