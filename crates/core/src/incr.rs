//! The **incremental re-check engine**: Theorem 4.1 applied across *time*.
//!
//! The paper's target workload is a stream of small ACL edits against a
//! mostly-stable WAN. A cold [`crate::check_configs`] re-derives the FEC
//! partition, re-enumerates every class's paths and re-solves every
//! `(class, path)` query on each invocation — even though consecutive
//! edits touch a handful of slots and their differential covers miss
//! almost every class. [`CheckSession`] keeps the config-independent work
//! alive between invocations:
//!
//! 1. **Dirty-set derivation.** Each delta's differential rules (Def. 4.1
//!    computed against the session base) yield a packet cover `H`; a class
//!    is *dirty* iff its cube intersects `H`. Clean classes meet identical
//!    rule subsequences before and after the delta, so their verdicts are
//!    reused without any solver work — the same theorem that prunes a
//!    single check, applied across the edit stream.
//! 2. **Persistent query reuse.** Stage-1 queries land in a
//!    generation-tagged [`QueryCache`] that survives across re-checks;
//!    each `recheck` advances the generation and evicts entries unused for
//!    [`IncrConfig::keep_generations`] steps, so the cache tracks the
//!    *live* decision models of the evolving configuration instead of
//!    growing without bound.
//! 3. **Structural memoization.** The FEC partition and per-class path
//!    sets are pure functions of `(net, scope, controls)`; the session
//!    computes them once (paths lazily, per class) and replays them.
//!
//! **Equivalence contract.** `session.recheck(delta)` produces a
//! [`CheckReport`] *byte-identical* to a cold
//! `check_configs(net, scope, base, base ⊕ delta, controls, cfg)` —
//! same verdict and witness, same FEC/path/rule counts, same folded solver
//! statistics — because both run the same [`crate::check`] inner body; the
//! session merely substitutes memoized inputs produced by the same
//! deterministic functions. Wall-clock splits differ (that is the point),
//! and the obs stream additionally carries the `check.incr_dirty` /
//! `check.incr_clean` / `check.incr_dirty_pairs` counters.
//! `tests/incr_oracle.rs` pins the contract over random 50-step edit
//! sequences across thread counts and cache settings.
//!
//! Topology or routing changes invalidate the memoized partition: drop
//! the session and build a new one (the query cache can be shared across
//! sessions via [`CheckSession::config`]'s `cache` handle, since its keys
//! are structural over ACL chains, not over the topology).

use crate::check::{check_inner, CheckConfig, CheckReport, IncrStats, SessionMemo};
use crate::control::ResolvedControl;
use crate::qcache::QueryCache;
use crate::task::Task;
use jinjing_acl::atoms::ClassExplosion;
use jinjing_acl::Acl;
use jinjing_net::{AclConfig, Dir, Network, Scope, Slot};
use std::fmt;

/// Session tunables (the check itself is tuned by [`CheckConfig`]).
#[derive(Debug, Clone)]
pub struct IncrConfig {
    /// Cache-eviction window: after each re-check, entries whose last use
    /// is more than this many generations old are dropped. `u64::MAX`
    /// keeps everything forever.
    pub keep_generations: u64,
    /// Advance the session base past an *inconsistent* delta anyway.
    /// The default (`false`) models the paper's workflow: a violating
    /// update is rejected, the deployed configuration stays put, and the
    /// next delta is checked against the same base.
    pub apply_inconsistent: bool,
}

impl Default for IncrConfig {
    fn default() -> IncrConfig {
        IncrConfig {
            keep_generations: 8,
            apply_inconsistent: false,
        }
    }
}

/// One edit inside a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaEdit {
    /// Install (or replace) the ACL at a slot.
    Set(Slot, Acl),
    /// Remove the ACL at a slot (reverting it to implicit permit-all).
    Clear(Slot),
}

impl DeltaEdit {
    /// The slot this edit touches.
    pub fn slot(&self) -> Slot {
        match self {
            DeltaEdit::Set(s, _) | DeltaEdit::Clear(s) => *s,
        }
    }
}

/// A configuration delta: an ordered list of slot edits. Applying a delta
/// is last-writer-wins per slot, mirroring how an operator pushes ACL
/// updates device by device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    edits: Vec<DeltaEdit>,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Append "install `acl` at `slot`".
    pub fn set(mut self, slot: Slot, acl: Acl) -> Delta {
        self.edits.push(DeltaEdit::Set(slot, acl));
        self
    }

    /// Append "clear the ACL at `slot`".
    pub fn clear(mut self, slot: Slot) -> Delta {
        self.edits.push(DeltaEdit::Clear(slot));
        self
    }

    /// The edits, in application order.
    pub fn edits(&self) -> &[DeltaEdit] {
        &self.edits
    }

    /// `true` when there are no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// The configuration obtained by applying this delta to `base`.
    pub fn applied_to(&self, base: &AclConfig) -> AclConfig {
        let mut out = base.clone();
        for e in &self.edits {
            match e {
                DeltaEdit::Set(slot, acl) => out.set(*slot, acl.clone()),
                DeltaEdit::Clear(slot) => {
                    out.clear(*slot);
                }
            }
        }
        out
    }
}

/// What one [`CheckSession::recheck`] step produced.
#[derive(Debug, Clone)]
pub struct RecheckReport {
    /// The check report — byte-identical to a cold check of
    /// `(base, base ⊕ delta)` (see the module-level equivalence contract).
    pub report: CheckReport,
    /// The incremental ledger: dirty/clean class split and dispatched
    /// pair count for this delta.
    pub incr: IncrStats,
    /// The cache generation this step ran under (0 when caching is off).
    pub generation: u64,
    /// Stale cache entries evicted after this step.
    pub evicted: usize,
    /// Whether the delta was folded into the session base (consistent
    /// deltas always; inconsistent ones only under
    /// [`IncrConfig::apply_inconsistent`]).
    pub applied: bool,
}

/// A long-lived incremental checking session over a fixed network, scope
/// and control set. See the module docs for the reuse structure and the
/// equivalence contract.
pub struct CheckSession<'n> {
    net: &'n Network,
    scope: Scope,
    controls: Vec<ResolvedControl>,
    base: AclConfig,
    cfg: CheckConfig,
    incr: IncrConfig,
    memo: SessionMemo,
    steps: u64,
}

impl<'n> CheckSession<'n> {
    /// Open a session with default configurations (no controls).
    pub fn new(
        net: &'n Network,
        scope: Scope,
        base: AclConfig,
    ) -> Result<CheckSession<'n>, ClassExplosion> {
        CheckSession::with_configs(
            net,
            scope,
            Vec::new(),
            base,
            CheckConfig::default(),
            IncrConfig::default(),
        )
    }

    /// Open a session for a resolved check task: scope, controls and the
    /// *current* configuration (`task.before`) seed the session.
    pub fn for_task(
        net: &'n Network,
        task: &Task,
        cfg: CheckConfig,
        incr: IncrConfig,
    ) -> Result<CheckSession<'n>, ClassExplosion> {
        CheckSession::with_configs(
            net,
            task.scope.clone(),
            task.controls.clone(),
            task.before.clone(),
            cfg,
            incr,
        )
    }

    /// Open a fully configured session. Derives the FEC partition up
    /// front (the one-off cost a cold check pays on *every* invocation);
    /// per-class paths are enumerated lazily as deltas dirty them.
    pub fn with_configs(
        net: &'n Network,
        scope: Scope,
        controls: Vec<ResolvedControl>,
        base: AclConfig,
        cfg: CheckConfig,
        incr: IncrConfig,
    ) -> Result<CheckSession<'n>, ClassExplosion> {
        let sp = cfg.obs.span("incr.init");
        let memo = SessionMemo::build(net, &scope, &controls, cfg.refine_limits)?;
        sp.finish();
        cfg.obs.event(
            jinjing_obs::Level::Info,
            "incr.open",
            &format!("session open: {} classes", memo.classes.len()),
        );
        Ok(CheckSession {
            net,
            scope,
            controls,
            base,
            cfg,
            incr,
            memo,
            steps: 0,
        })
    }

    /// The current session base configuration.
    pub fn base(&self) -> &AclConfig {
        &self.base
    }

    /// The session's check configuration (its `cache` handle is the
    /// persistent generation-tagged cache).
    pub fn config(&self) -> &CheckConfig {
        &self.cfg
    }

    /// Number of `recheck` steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of FEC classes in the memoized partition.
    pub fn class_count(&self) -> usize {
        self.memo.classes.len()
    }

    /// Total `(class, path)` pairs over *all* classes — the full workload
    /// a cold check would consider before Theorem 4.1 pruning. Forces (and
    /// memoizes) path enumeration for every class; the dirty-pair counts
    /// in [`RecheckReport::incr`] are measured against this ceiling.
    pub fn total_pairs(&self) -> usize {
        (0..self.memo.classes.len())
            .map(|i| self.memo.paths_for(self.net, &self.scope, i).len())
            .sum()
    }

    /// Re-check the session base against `base ⊕ delta`.
    ///
    /// Advances the cache generation, runs the shared check body with the
    /// session memo (clean classes replayed, dirty stage-1 queries served
    /// from the persistent cache where possible), evicts stale cache
    /// entries, and — when the delta is accepted — folds it into the base
    /// so the next `recheck` is measured against it.
    pub fn recheck(&mut self, delta: &Delta) -> Result<RecheckReport, crate::check::CheckError> {
        let after = delta.applied_to(&self.base);
        let generation = match &self.cfg.cache {
            Some(c) => c.advance_generation(),
            None => 0,
        };
        // The warm solver layer ticks in lockstep with the cache: its
        // families (and class pins) are stamped per re-check, so stale
        // chains can be retracted below on the same window.
        if let Some(w) = &self.cfg.warm {
            w.advance_generation();
        }
        let (report, incr) = check_inner(
            self.net,
            &self.scope,
            &self.base,
            &after,
            &self.controls,
            &self.cfg,
            Some(&self.memo),
        )?;
        let evicted = match &self.cfg.cache {
            Some(c) => c.evict_stale(self.incr.keep_generations),
            None => 0,
        };
        // Retract warm families whose chains no recent delta queried
        // (dropping their solvers) and flip the selectors of stale class
        // pins, bounding resident solver state exactly like the cache's
        // eviction bounds entries. Retraction only ever costs a rebuild —
        // the canonical construction is deterministic — never an answer.
        if let Some(w) = &self.cfg.warm {
            let (fams, pins) = w.retract_stale(self.incr.keep_generations);
            self.cfg
                .obs
                .counter_add("incr.warm_retracted_families", fams as u64);
            self.cfg
                .obs
                .counter_add("incr.warm_retracted_pins", pins as u64);
        }
        let applied = report.outcome.is_consistent() || self.incr.apply_inconsistent;
        if applied {
            self.base = after;
        }
        self.steps += 1;
        self.cfg.obs.event(
            jinjing_obs::Level::Info,
            "incr.step",
            &format!(
                "step {}: {} ({} dirty / {} clean classes, {} pairs, {} evicted)",
                self.steps,
                if report.outcome.is_consistent() {
                    "accepted"
                } else if applied {
                    "inconsistent (applied)"
                } else {
                    "rejected"
                },
                incr.dirty_classes,
                incr.clean_classes,
                incr.dirty_pairs,
                evicted
            ),
        );
        Ok(RecheckReport {
            report,
            incr,
            generation,
            evicted,
            applied,
        })
    }

    /// Check the session base against an arbitrary candidate configuration
    /// **without advancing the session**: the base is never folded, the
    /// step counter and cache/warm generations stay put, and nothing is
    /// evicted. The report is byte-identical to a cold
    /// `check_configs(net, scope, base, after, controls, cfg)` — the same
    /// shared body runs, merely replaying the session memo — which is the
    /// contract `crate::plan`'s prefix-state certification leans on: every
    /// intermediate rollout state is judged against the *fixed* deployed
    /// base, not against a previously probed candidate.
    ///
    /// Sound to interleave freely with [`CheckSession::recheck`]: the query
    /// cache and warm solver families key on ACL-chain *content*, so
    /// entries recorded under one candidate configuration can never answer
    /// for a different one.
    pub fn probe(&self, after: &AclConfig) -> Result<(CheckReport, IncrStats), crate::check::CheckError> {
        check_inner(
            self.net,
            &self.scope,
            &self.base,
            after,
            &self.controls,
            &self.cfg,
            Some(&self.memo),
        )
    }

    /// Handle to the persistent query cache, when caching is enabled.
    pub fn cache(&self) -> Option<&std::sync::Arc<QueryCache>> {
        self.cfg.cache.as_ref()
    }

    /// Handle to the persistent warm solver layer, when enabled.
    pub fn warm(&self) -> Option<&std::sync::Arc<crate::warm::ScopeSolver>> {
        self.cfg.warm.as_ref()
    }
}

// ---------------------------------------------------------------------------
// Delta scripts (the `jinjing watch` input format)
// ---------------------------------------------------------------------------

/// A parse failure in a delta script.
#[derive(Debug, Clone)]
pub struct DeltaScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DeltaScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DeltaScriptError {}

fn script_err(line: usize, message: impl Into<String>) -> DeltaScriptError {
    DeltaScriptError {
        line,
        message: message.into(),
    }
}

/// Resolve `DEV:IFACE[-in|-out]` (direction defaults to `in`, matching
/// LAI's `modify`) to a concrete slot.
fn parse_slot(net: &Network, line: usize, token: &str) -> Result<Slot, DeltaScriptError> {
    let (name, dir) = match token.rsplit_once('-') {
        Some((n, "in")) => (n, Dir::In),
        Some((n, "out")) => (n, Dir::Out),
        _ => (token, Dir::In),
    };
    let (dev, iface) = name
        .split_once(':')
        .ok_or_else(|| script_err(line, format!("slot {token:?} is not DEV:IFACE[-in|-out]")))?;
    let id = net
        .topology()
        .iface_by_name(dev, iface)
        .ok_or_else(|| script_err(line, format!("unknown interface {dev}:{iface}")))?;
    Ok(Slot { iface: id, dir })
}

/// Parse a delta script: a sequence of labeled deltas for
/// [`CheckSession::recheck`], one edit per line.
///
/// ```text
/// # comment (blank lines ignored)
/// step tighten-D2                  # begins a new delta
/// set D:2 deny dst 1.0.0.0/8; deny dst 2.0.0.0/8
/// set A:3-out deny dst 7.0.0.0/8; default permit
/// clear C:1
/// step revert
/// clear A:3-out
/// ```
///
/// `set` takes a slot and a one-line ACL — rules separated by `;`, the
/// grammar of [`jinjing_acl::parse::parse_acl`] (including a trailing
/// `default permit|deny`). Edits before any `step` form an implicit first
/// delta labeled `step-1`.
pub fn parse_delta_script(
    net: &Network,
    text: &str,
) -> Result<Vec<(String, Delta)>, DeltaScriptError> {
    let mut out: Vec<(String, Delta)> = Vec::new();
    let mut current: Option<(String, Delta)> = None;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("step") {
            if rest.is_empty() || rest.starts_with(char::is_whitespace) {
                if let Some(done) = current.take() {
                    out.push(done);
                }
                let label = rest.trim();
                let label = if label.is_empty() {
                    format!("step-{}", out.len() + 1)
                } else {
                    label.to_string()
                };
                current = Some((label, Delta::new()));
                continue;
            }
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
            script_err(ln, format!("expected `set`/`clear`/`step`, got {line:?}"))
        })?;
        let rest = rest.trim();
        let entry =
            current.get_or_insert_with(|| (format!("step-{}", out.len() + 1), Delta::new()));
        match keyword {
            "set" => {
                let (slot_tok, acl_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| script_err(ln, "`set` needs a slot and an ACL"))?;
                let slot = parse_slot(net, ln, slot_tok)?;
                let acl_text = acl_text.replace(';', "\n");
                let acl = jinjing_acl::parse::parse_acl(&acl_text)
                    .map_err(|e| script_err(ln, format!("bad ACL: {e}")))?;
                entry.1 = std::mem::take(&mut entry.1).set(slot, acl);
            }
            "clear" => {
                let slot = parse_slot(net, ln, rest)?;
                entry.1 = std::mem::take(&mut entry.1).clear(slot);
            }
            other => {
                return Err(script_err(
                    ln,
                    format!("expected `set`/`clear`/`step`, got {other:?}"),
                ));
            }
        }
    }
    if let Some(done) = current.take() {
        out.push(done);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_configs, CheckOutcome};
    use crate::figure1::Figure1;
    use jinjing_acl::AclBuilder;
    use std::sync::Arc;

    /// Canonical rendering of a report minus wall-clock.
    fn canon(r: &CheckReport) -> String {
        format!(
            "{:?}|{}|{}|{:?}|{}|{}",
            r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
        )
    }

    fn cold(f: &Figure1, before: &AclConfig, after: &AclConfig) -> CheckReport {
        // A *fresh* cache per invocation: the definition of "cold".
        let cfg = CheckConfig::default();
        check_configs(&f.net, &f.scope(), before, after, &[], &cfg).unwrap()
    }

    #[test]
    fn recheck_matches_cold_check_step_by_step() {
        let f = Figure1::new();
        let mut session = CheckSession::new(&f.net, f.scope(), f.config.clone()).unwrap();
        let deltas = [
            // Consistent: identical rewrite of D2.
            Delta::new().set(
                f.slot("D2"),
                AclBuilder::default_permit()
                    .deny_dst("2.0.0.0/8")
                    .deny_dst("1.0.0.0/8")
                    .build(),
            ),
            // Inconsistent: drop D2's denies entirely (opens 1/8, 2/8).
            Delta::new().set(f.slot("D2"), Acl::permit_all()),
            // Empty delta: the fast path.
            Delta::new(),
            // Consistent again: tighten an untouched prefix end to end.
            Delta::new().set(
                f.slot("A1"),
                AclBuilder::default_permit()
                    .deny_dst("6.0.0.0/8")
                    .deny_dst("9.0.0.0/8")
                    .build(),
            ),
        ];
        let mut base = f.config.clone();
        for (i, d) in deltas.iter().enumerate() {
            let after = d.applied_to(&base);
            let want = cold(&f, &base, &after);
            let got = session.recheck(d).unwrap();
            assert_eq!(canon(&got.report), canon(&want), "step {i} diverged");
            assert_eq!(
                got.incr.dirty_classes + got.incr.clean_classes,
                if got.report.fec_count == 0 {
                    got.incr.clean_classes
                } else {
                    session.class_count()
                },
                "step {i}: class ledger adds up"
            );
            // The oracle's base-advance mirrors the session's policy.
            if got.applied {
                base = after;
            }
            assert_eq!(
                got.applied,
                got.report.outcome.is_consistent(),
                "default policy applies consistent deltas only"
            );
        }
        assert_eq!(session.steps(), deltas.len() as u64);
    }

    #[test]
    fn rejected_delta_leaves_the_base_untouched() {
        let f = Figure1::new();
        let mut session = CheckSession::new(&f.net, f.scope(), f.config.clone()).unwrap();
        let bad = Delta::new().set(f.slot("D2"), Acl::permit_all());
        let r = session.recheck(&bad).unwrap();
        assert!(!r.applied);
        assert!(matches!(r.report.outcome, CheckOutcome::Inconsistent(_)));
        assert_eq!(session.base(), &f.config);
        // The same delta against the same base reproduces the same report.
        let r2 = session.recheck(&bad).unwrap();
        assert_eq!(canon(&r.report), canon(&r2.report));
    }

    #[test]
    fn apply_inconsistent_advances_anyway() {
        let f = Figure1::new();
        let mut session = CheckSession::with_configs(
            &f.net,
            f.scope(),
            Vec::new(),
            f.config.clone(),
            CheckConfig::default(),
            IncrConfig {
                apply_inconsistent: true,
                ..IncrConfig::default()
            },
        )
        .unwrap();
        let bad = Delta::new().set(f.slot("D2"), Acl::permit_all());
        let r = session.recheck(&bad).unwrap();
        assert!(r.applied && !r.report.outcome.is_consistent());
        assert!(session.base().get(f.slot("D2")).unwrap().is_permit_all());
        // Re-checking the now-applied state against an empty delta is clean.
        let r2 = session.recheck(&Delta::new()).unwrap();
        assert!(r2.report.outcome.is_consistent());
        assert_eq!(r2.incr.dirty_classes, 0);
    }

    #[test]
    fn empty_delta_takes_the_fast_path_with_zero_dirty() {
        let f = Figure1::new();
        let mut session = CheckSession::new(&f.net, f.scope(), f.config.clone()).unwrap();
        let r = session.recheck(&Delta::new()).unwrap();
        assert!(r.report.outcome.is_consistent());
        assert_eq!(r.report.fec_count, 0, "fast path skips refinement");
        assert_eq!(r.incr.dirty_classes, 0);
        assert_eq!(r.incr.dirty_pairs, 0);
        assert_eq!(r.incr.clean_classes, session.class_count());
    }

    #[test]
    fn generations_advance_and_stale_entries_evict() {
        let f = Figure1::new();
        let cfg = CheckConfig::default();
        let cache = Arc::clone(cfg.cache.as_ref().unwrap());
        let mut session = CheckSession::with_configs(
            &f.net,
            f.scope(),
            Vec::new(),
            f.config.clone(),
            cfg,
            IncrConfig {
                keep_generations: 2,
                ..IncrConfig::default()
            },
        )
        .unwrap();
        // Step 1 populates the cache for D2's rewrite.
        let rewrite = Delta::new().set(
            f.slot("D2"),
            AclBuilder::default_permit()
                .deny_dst("2.0.0.0/8")
                .deny_dst("1.0.0.0/8")
                .build(),
        );
        let r1 = session.recheck(&rewrite).unwrap();
        assert_eq!(r1.generation, 1);
        assert!(!cache.is_empty());
        // Steps touching a *different* region leave D2's entries unused;
        // after `keep_generations` more steps they are evicted.
        let elsewhere = Delta::new().set(
            f.slot("A1"),
            AclBuilder::default_permit().deny_dst("6.0.0.0/8").build(),
        );
        let mut evicted_total = 0;
        for _ in 0..4 {
            // Alternate so each step has a non-empty cover.
            evicted_total += session.recheck(&elsewhere).unwrap().evicted;
            evicted_total += session
                .recheck(
                    &Delta::new().set(f.slot("A1"), f.config.get(f.slot("A1")).unwrap().clone()),
                )
                .unwrap()
                .evicted;
        }
        assert!(evicted_total > 0, "stale entries must eventually evict");
        assert_eq!(cache.generation(), session.steps());
    }

    #[test]
    fn session_memoizes_paths_and_total_pairs_is_stable() {
        let f = Figure1::new();
        let session = CheckSession::new(&f.net, f.scope(), f.config.clone()).unwrap();
        let total = session.total_pairs();
        assert!(total > 0);
        assert_eq!(total, session.total_pairs(), "memoized, not re-enumerated");
        assert!(session.class_count() > 0);
    }

    #[test]
    fn delta_script_round_trips() {
        let f = Figure1::new();
        let script = "\
# tighten then revert
step tighten
set D:2 deny dst 1.0.0.0/8; deny dst 2.0.0.0/8; default permit
set A:3-out deny dst 7.0.0.0/8
step revert
clear A:3-out
";
        let deltas = parse_delta_script(&f.net, script).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].0, "tighten");
        assert_eq!(deltas[0].1.len(), 2);
        assert_eq!(deltas[1].0, "revert");
        let DeltaEdit::Set(slot, acl) = &deltas[0].1.edits()[0] else {
            panic!("expected a set edit");
        };
        assert_eq!(*slot, f.slot("D2"));
        assert_eq!(acl.len(), 2);
        let DeltaEdit::Set(slot, _) = &deltas[0].1.edits()[1] else {
            panic!("expected a set edit");
        };
        assert_eq!(*slot, Slot::egress(f.iface("A3")));
        assert_eq!(
            deltas[1].1.edits()[0],
            DeltaEdit::Clear(Slot::egress(f.iface("A3")))
        );
    }

    #[test]
    fn delta_script_implicit_first_step_and_errors() {
        let f = Figure1::new();
        let deltas = parse_delta_script(&f.net, "clear D:2\n").unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].0, "step-1");
        for (bad, needle) in [
            ("set D:2\n", "needs a slot and an ACL"),
            ("set Z:9 permit all\n", "unknown interface"),
            ("frobnicate D:2\n", "expected `set`"),
            ("set D2 permit all\n", "not DEV:IFACE"),
            ("set D:2 permit dst banana\n", "bad ACL"),
        ] {
            let err = parse_delta_script(&f.net, bad).unwrap_err();
            assert!(err.to_string().contains(needle), "{bad:?} → {err}");
        }
    }
}
