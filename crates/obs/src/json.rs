//! A hand-rolled JSON writer.
//!
//! The obs crate must stay dependency-free (the build is offline), so the
//! snapshot serializer is written by hand. It produces strict JSON:
//! RFC 8259 string escaping, no trailing commas, and — because snapshots
//! are meant to be diffed in tests and CI — *stable key ordering* (callers
//! insert keys in sorted order; the writer preserves insertion order).

use std::fmt::Write;

/// Append a JSON-escaped string literal (including the surrounding quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for JSON objects and arrays.
///
/// The caller drives structure (`begin_object` / `end_object`, …); the
/// writer tracks whether a comma is due. Keys are emitted in the order the
/// caller supplies them, so sorted input yields byte-stable output.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per nesting level: has a first element been written?
    has_elem: Vec<bool>,
}

impl JsonWriter {
    /// Fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Finish and return the accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.has_elem.is_empty(), "unbalanced begin/end");
        self.out
    }

    fn comma(&mut self) {
        if let Some(seen) = self.has_elem.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
        }
    }

    /// `{`
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.has_elem.push(false);
    }

    /// `}`
    pub fn end_object(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    /// `[`
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.has_elem.push(false);
    }

    /// `]`
    pub fn end_array(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// `"key":` — must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        self.comma();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit its own comma.
        if let Some(seen) = self.has_elem.last_mut() {
            *seen = false;
        }
    }

    /// A string value.
    pub fn string(&mut self, s: &str) {
        self.comma();
        write_escaped(&mut self.out, s);
    }

    /// An unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// A signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// A float value (finite; non-finite values are emitted as `null`,
    /// which is what strict JSON requires).
    pub fn f64(&mut self, v: f64) {
        self.comma();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// A boolean value.
    pub fn bool(&mut self, v: bool) {
        self.comma();
        self.out.push_str(if v { "true" } else { "false" });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{01}f");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.string("x");
        w.string("y");
        w.begin_object();
        w.key("n");
        w.i64(-3);
        w.end_object();
        w.end_array();
        w.key("c");
        w.bool(true);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y",{"n":-3}],"c":true}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.end_array();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"xs":[],"o":{}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(1.5);
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[1.5,null,null]");
    }
}
