//! A hand-rolled JSON writer.
//!
//! The obs crate must stay dependency-free (the build is offline), so the
//! snapshot serializer is written by hand. It produces strict JSON:
//! RFC 8259 string escaping, no trailing commas, and — because snapshots
//! are meant to be diffed in tests and CI — *stable key ordering* (callers
//! insert keys in sorted order; the writer preserves insertion order).

use std::fmt::Write;

/// Append a JSON-escaped string literal (including the surrounding quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for JSON objects and arrays.
///
/// The caller drives structure (`begin_object` / `end_object`, …); the
/// writer tracks whether a comma is due. Keys are emitted in the order the
/// caller supplies them, so sorted input yields byte-stable output.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per nesting level: has a first element been written?
    has_elem: Vec<bool>,
}

impl JsonWriter {
    /// Fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Finish and return the accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.has_elem.is_empty(), "unbalanced begin/end");
        self.out
    }

    fn comma(&mut self) {
        if let Some(seen) = self.has_elem.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
        }
    }

    /// `{`
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.has_elem.push(false);
    }

    /// `}`
    pub fn end_object(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    /// `[`
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.has_elem.push(false);
    }

    /// `]`
    pub fn end_array(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// `"key":` — must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        self.comma();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit its own comma.
        if let Some(seen) = self.has_elem.last_mut() {
            *seen = false;
        }
    }

    /// A string value.
    pub fn string(&mut self, s: &str) {
        self.comma();
        write_escaped(&mut self.out, s);
    }

    /// An unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// A signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// A float value (finite; non-finite values are emitted as `null`,
    /// which is what strict JSON requires).
    pub fn f64(&mut self, v: f64) {
        self.comma();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// A boolean value.
    pub fn bool(&mut self, v: bool) {
        self.comma();
        self.out.push_str(if v { "true" } else { "false" });
    }
}

/// A parsed JSON value.
///
/// Counterpart to [`JsonWriter`] for the handful of places that must *read*
/// canonical JSON back (merging shard snapshots, the coordinator's fan-in).
/// Object keys keep document order; numbers keep their raw spelling so a
/// parse → render round-trip of canonical output is byte-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `{…}` — entries in document order.
    Object(Vec<(String, Json)>),
    /// `[…]`
    Array(Vec<Json>),
    /// A string (unescaped).
    Str(String),
    /// A number, kept as its raw source spelling.
    Num(String),
    /// `true` / `false`
    Bool(bool),
    /// `null`
    Null,
}

impl Json {
    /// Object member by key (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, or an empty slice.
    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Object(m) => m,
            _ => &[],
        }
    }

    /// The array's elements, or an empty slice.
    pub fn elements(&self) -> &[Json] {
        match self {
            Json::Array(xs) => xs,
            _ => &[],
        }
    }

    /// String payload, `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as `u64` (integer spellings only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number as `i64` (integer spellings only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Rejects trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(elems));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: canonical snapshots never emit
                            // them (the writer escapes only controls), so a
                            // lone surrogate maps to U+FFFD rather than erroring.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let ch_len = utf8_len(b);
                    let chunk = s
                        .get(..ch_len)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    let ch = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(ch);
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(format!("bad number at offset {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .to_string();
        Ok(Json::Num(raw))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{01}f");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.string("x");
        w.string("y");
        w.begin_object();
        w.key("n");
        w.i64(-3);
        w.end_object();
        w.end_array();
        w.key("c");
        w.bool(true);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y",{"n":-3}],"c":true}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.end_array();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"xs":[],"o":{}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(1.5);
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[1.5,null,null]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.string("x\n\"y\"");
        w.i64(-3);
        w.f64(2.5);
        w.bool(false);
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = v.get("b").unwrap().elements();
        assert_eq!(b[0].as_str(), Some("x\n\"y\""));
        assert_eq!(b[1].as_i64(), Some(-3));
        assert_eq!(b[2].as_f64(), Some(2.5));
        assert_eq!(b[3], Json::Bool(false));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn parser_handles_unicode_and_escapes() {
        let v = parse(r#"{"k":"café → né"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("café → né"));
    }

    #[test]
    fn parser_keeps_raw_number_spelling() {
        let v = parse("[1.50, 0, -0.0]").unwrap();
        assert_eq!(v.elements()[0], Json::Num("1.50".to_string()));
        assert_eq!(v.elements()[2].as_f64(), Some(-0.0));
    }
}
