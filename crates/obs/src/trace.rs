//! The **flight recorder**: a bounded ring of timestamped trace events
//! carried on a per-request [`TraceCtx`], exported as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! The aggregate side of this crate ([`crate::Collector`]) answers "how
//! much time did phase X take *in total*"; the flight recorder answers
//! "what did *this request* do, in order, on which worker". The two are
//! deliberately decoupled:
//!
//! - A [`TraceCtx`] is **off by default** ([`TraceCtx::disabled`] is a
//!   no-op handle with no allocation behind it), so the hot path pays a
//!   single branch when tracing is not requested. The byte-identity
//!   contract of canonical reports is therefore untouched: trace files
//!   are the *only* artifact allowed to contain wall-clock timestamps.
//! - When enabled, events go into a bounded ring guarded by one mutex;
//!   overflow drops new events (never tears open/close pairing) and is
//!   counted in [`TraceCtx::events_dropped`] so saturation is visible.
//! - The trace id is **deterministic**: [`trace_id_of`] hashes the
//!   request's intent text (FNV-1a, 64-bit), so the same query always
//!   yields the same id and a client can predict where to fetch its
//!   trace (`GET /v1/trace/{id}`).
//!
//! Track layout: `tid 0` is the driver thread (engine phases mirrored
//! from [`crate::Collector::span`]); `tid 1 + w` is pool worker `w` of
//! `jinjing-par` (per-pair and per-solver-query spans). Timestamps are
//! microseconds from the recorder's epoch, assigned *inside* the ring
//! lock, so they are globally monotone — and in particular monotone per
//! track, which is what trace viewers require.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity (events), sized so a worst-case `fix` on the
/// paper's running example (a few thousand solver queries, two events
/// each) fits with headroom while bounding memory to a few hundred KiB.
pub const DEFAULT_CAPACITY: usize = 8192;

/// Deterministic trace id for a request: 64-bit FNV-1a over the input
/// (the intent text), rendered as `t` + 16 lowercase hex digits. Same
/// input → same id, on every run, platform and thread count.
pub fn trace_id_of(input: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in input.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("t{h:016x}")
}

/// Event kinds, mirroring the Chrome `trace_event` phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Instant event (`ph: "i"`, thread scope).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
struct TraceEvent {
    /// Nanoseconds since the recorder's epoch.
    t_ns: u64,
    /// Track id: 0 = driver, `1 + w` = pool worker `w`.
    tid: u64,
    phase: Phase,
    name: String,
    /// Numeric arguments (`args` in the Chrome JSON), sorted at render.
    args: Vec<(String, u64)>,
    /// Free-text argument, rendered as `args.msg`.
    msg: Option<String>,
}

/// The mutable ring state.
#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Per-track stack of open spans: `(name, recorded)`. `recorded`
    /// is false when the Begin was dropped on overflow, so the matching
    /// End is dropped too and B/E pairs never tear.
    stacks: BTreeMap<u64, Vec<(String, bool)>>,
}

/// The shared recorder behind an enabled [`TraceCtx`].
#[derive(Debug)]
struct Recorder {
    id: String,
    capacity: usize,
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl Recorder {
    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A per-request trace context: a cheap cloneable handle to one flight
/// recorder, or a no-op when tracing was not requested. `Default` is
/// disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    rec: Option<Arc<Recorder>>,
}

impl TraceCtx {
    /// The no-op context: every method is a cheap early return.
    pub fn disabled() -> TraceCtx {
        TraceCtx { rec: None }
    }

    /// An enabled context with the [`DEFAULT_CAPACITY`] ring.
    pub fn new(id: &str) -> TraceCtx {
        TraceCtx::with_capacity(id, DEFAULT_CAPACITY)
    }

    /// An enabled context with an explicit ring capacity (events).
    pub fn with_capacity(id: &str, capacity: usize) -> TraceCtx {
        TraceCtx {
            rec: Some(Arc::new(Recorder {
                id: id.to_string(),
                capacity,
                epoch: Instant::now(),
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    dropped: 0,
                    stacks: BTreeMap::new(),
                }),
            })),
        }
    }

    /// `true` when events are being recorded.
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// The trace id, when enabled.
    pub fn id(&self) -> Option<&str> {
        self.rec.as_deref().map(|r| r.id.as_str())
    }

    /// Events dropped on ring overflow so far.
    pub fn events_dropped(&self) -> u64 {
        self.rec.as_deref().map_or(0, |r| r.lock().dropped)
    }

    /// Events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.rec
            .as_deref()
            .map_or(0, |r| r.lock().events.len() as u64)
    }

    fn push(&self, tid: u64, phase: Phase, name: &str, args: &[(&str, u64)], msg: Option<&str>) {
        let Some(r) = self.rec.as_deref() else { return };
        let t_ns = r.epoch.elapsed().as_nanos() as u64;
        let mut g = r.lock();
        match phase {
            Phase::Begin => {
                let recorded = g.events.len() < r.capacity;
                if recorded {
                    g.events.push(TraceEvent {
                        t_ns,
                        tid,
                        phase,
                        name: name.to_string(),
                        args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                        msg: msg.map(str::to_string),
                    });
                } else {
                    g.dropped = g.dropped.saturating_add(1);
                }
                g.stacks
                    .entry(tid)
                    .or_default()
                    .push((name.to_string(), recorded));
            }
            Phase::End => {
                // Pop the open span; its End records iff its Begin did,
                // so B/E pairs stay balanced even across overflow. The
                // End itself is exempt from the cap (bounded by the
                // number of open recorded spans).
                let Some((name, recorded)) = g.stacks.entry(tid).or_default().pop() else {
                    return; // unmatched end: ignore
                };
                if recorded {
                    g.events.push(TraceEvent {
                        t_ns,
                        tid,
                        phase,
                        name,
                        args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                        msg: msg.map(str::to_string),
                    });
                }
            }
            Phase::Instant | Phase::Counter => {
                if g.events.len() < r.capacity {
                    g.events.push(TraceEvent {
                        t_ns,
                        tid,
                        phase,
                        name: name.to_string(),
                        args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                        msg: msg.map(str::to_string),
                    });
                } else {
                    g.dropped = g.dropped.saturating_add(1);
                }
            }
        }
    }

    /// Open a span on track `tid`.
    pub fn begin(&self, tid: u64, name: &str) {
        self.push(tid, Phase::Begin, name, &[], None);
    }

    /// Open a span on track `tid` with numeric arguments.
    pub fn begin_with(&self, tid: u64, name: &str, args: &[(&str, u64)]) {
        self.push(tid, Phase::Begin, name, args, None);
    }

    /// Close the innermost open span on track `tid`.
    pub fn end(&self, tid: u64) {
        self.push(tid, Phase::End, "", &[], None);
    }

    /// Close the innermost open span on track `tid`, attaching numeric
    /// arguments to the End event (Chrome merges B and E args).
    pub fn end_with(&self, tid: u64, args: &[(&str, u64)]) {
        self.push(tid, Phase::End, "", args, None);
    }

    /// RAII span on track `tid`: closes on drop or [`TraceSpan::end_with`].
    pub fn span(&self, tid: u64, name: &str) -> TraceSpan {
        self.begin(tid, name);
        TraceSpan {
            ctx: self.clone(),
            tid,
            live: self.enabled(),
        }
    }

    /// RAII span with begin-time numeric arguments.
    pub fn span_with(&self, tid: u64, name: &str, args: &[(&str, u64)]) -> TraceSpan {
        self.begin_with(tid, name, args);
        TraceSpan {
            ctx: self.clone(),
            tid,
            live: self.enabled(),
        }
    }

    /// Record an instant event on track `tid`.
    pub fn instant(&self, tid: u64, name: &str) {
        self.push(tid, Phase::Instant, name, &[], None);
    }

    /// Record an instant event with a free-text message (`args.msg`).
    pub fn instant_msg(&self, tid: u64, name: &str, msg: &str) {
        self.push(tid, Phase::Instant, name, &[], Some(msg));
    }

    /// Record a counter sample (`ph: "C"`) on track `tid`; viewers plot
    /// the series over time.
    pub fn counter(&self, tid: u64, name: &str, value: u64) {
        self.push(tid, Phase::Counter, name, &[("value", value)], None);
    }

    /// Render the recorded events as Chrome `trace_event` JSON.
    ///
    /// The document shape is the "JSON Object Format":
    /// `{"displayTimeUnit":"ms","otherData":{…},"traceEvents":[…]}`.
    /// Metadata events (process / thread names) come first, then the
    /// recorded events in ring (i.e. global-timestamp) order; any span
    /// still open at render time gets a synthesized End at the last
    /// recorded timestamp so B/E pairs always balance. Rendering does
    /// not mutate the ring: calling this twice yields identical bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("otherData");
        w.begin_object();
        w.key("dropped_events");
        w.u64(self.events_dropped());
        w.key("trace_id");
        w.string(self.id().unwrap_or(""));
        w.end_object();
        w.key("traceEvents");
        w.begin_array();
        if let Some(r) = self.rec.as_deref() {
            let g = r.lock();
            // Track metadata: every tid that appears, plus the driver.
            let mut tids: Vec<u64> = g.events.iter().map(|e| e.tid).collect();
            tids.push(0);
            tids.sort_unstable();
            tids.dedup();
            meta_event(&mut w, "process_name", 0, "jinjing");
            for &tid in &tids {
                let label = if tid == 0 {
                    "driver".to_string()
                } else {
                    format!("worker-{}", tid - 1)
                };
                meta_event(&mut w, "thread_name", tid, &label);
            }
            let max_ns = g.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
            for e in &g.events {
                write_event(&mut w, e);
            }
            // Balance spans still open at render time.
            for (&tid, stack) in &g.stacks {
                for (name, recorded) in stack.iter().rev() {
                    if *recorded {
                        write_event(
                            &mut w,
                            &TraceEvent {
                                t_ns: max_ns,
                                tid,
                                phase: Phase::End,
                                name: name.clone(),
                                args: Vec::new(),
                                msg: None,
                            },
                        );
                    }
                }
            }
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// A `jinjing top`-style text summary of the trace: per-span-name
    /// counts, total and self wall-clock (total minus enclosed child
    /// spans on the same track), slowest first.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let Some(r) = self.rec.as_deref() else {
            return "trace: disabled\n".to_string();
        };
        let g = r.lock();
        // Replay the event stream per track, accumulating (count,
        // total, self) per span name.
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_ns: u64,
            self_ns: u64,
        }
        let mut agg: BTreeMap<String, Agg> = BTreeMap::new();
        // Per-tid stack of (name, start_ns, child_ns).
        let mut stacks: BTreeMap<u64, Vec<(String, u64, u64)>> = BTreeMap::new();
        for e in &g.events {
            match e.phase {
                Phase::Begin => {
                    stacks
                        .entry(e.tid)
                        .or_default()
                        .push((e.name.clone(), e.t_ns, 0));
                }
                Phase::End => {
                    let stack = stacks.entry(e.tid).or_default();
                    if let Some((name, start, child)) = stack.pop() {
                        let dur = e.t_ns.saturating_sub(start);
                        let a = agg.entry(name).or_default();
                        a.count += 1;
                        a.total_ns += dur;
                        a.self_ns += dur.saturating_sub(child);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += dur;
                        }
                    }
                }
                Phase::Instant | Phase::Counter => {}
            }
        }
        let mut rows: Vec<(String, Agg)> = agg.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} — {} event(s), {} dropped",
            r.id,
            g.events.len(),
            g.dropped
        );
        let _ = writeln!(out, "{:>12} {:>12} {:>7}  span", "total(us)", "self(us)", "count");
        for (name, a) in &rows {
            let _ = writeln!(
                out,
                "{:>12} {:>12} {:>7}  {name}",
                a.total_ns / 1_000,
                a.self_ns / 1_000,
                a.count
            );
        }
        out
    }
}

/// Write one Chrome metadata event (`ph: "M"`).
fn meta_event(w: &mut JsonWriter, name: &str, tid: u64, label: &str) {
    w.begin_object();
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string(label);
    w.end_object();
    w.key("name");
    w.string(name);
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(1);
    w.key("tid");
    w.u64(tid);
    w.end_object();
}

/// Write one recorded event in Chrome `trace_event` shape (keys in
/// sorted order, `ts` in fractional microseconds).
fn write_event(w: &mut JsonWriter, e: &TraceEvent) {
    w.begin_object();
    if !e.args.is_empty() || e.msg.is_some() {
        w.key("args");
        w.begin_object();
        let mut args: Vec<(&str, u64)> = e.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        args.sort_unstable();
        for (k, v) in args {
            w.key(k);
            w.u64(v);
        }
        if let Some(m) = &e.msg {
            w.key("msg");
            w.string(m);
        }
        w.end_object();
    }
    w.key("name");
    w.string(&e.name);
    w.key("ph");
    w.string(match e.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
        Phase::Counter => "C",
    });
    w.key("pid");
    w.u64(1);
    if e.phase == Phase::Instant {
        w.key("s");
        w.string("t");
    }
    w.key("tid");
    w.u64(e.tid);
    w.key("ts");
    w.f64(e.t_ns as f64 / 1_000.0);
    w.end_object();
}

/// RAII handle for one open trace span (see [`TraceCtx::span`]). Closes
/// the span on drop; [`TraceSpan::end_with`] closes it with arguments.
#[derive(Debug)]
pub struct TraceSpan {
    ctx: TraceCtx,
    tid: u64,
    live: bool,
}

impl TraceSpan {
    /// The track this span is open on.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The owning context (for emitting sibling events on the same track).
    pub fn ctx(&self) -> &TraceCtx {
        &self.ctx
    }

    /// Close the span, attaching numeric arguments to the End event.
    pub fn end_with(mut self, args: &[(&str, u64)]) {
        if self.live {
            self.live = false;
            self.ctx.end_with(self.tid, args);
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.live {
            self.ctx.end(self.tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = trace_id_of("scope A:*\ncheck\n");
        assert_eq!(a, trace_id_of("scope A:*\ncheck\n"));
        assert_ne!(a, trace_id_of("scope B:*\ncheck\n"));
        assert_eq!(a.len(), 17);
        assert!(a.starts_with('t'));
        assert!(a[1..].chars().all(|c| c.is_ascii_hexdigit()));
        // Pinned value: the id scheme is part of the serve API surface.
        assert_eq!(trace_id_of(""), "tcbf29ce484222325");
    }

    #[test]
    fn disabled_ctx_is_a_no_op() {
        let t = TraceCtx::disabled();
        assert!(!t.enabled());
        assert_eq!(t.id(), None);
        t.begin(0, "x");
        t.end(0);
        t.instant(0, "i");
        t.counter(0, "c", 1);
        let s = t.span(0, "y");
        s.end_with(&[("a", 1)]);
        assert_eq!(t.events_recorded(), 0);
        assert_eq!(t.events_dropped(), 0);
        assert!(t.to_chrome_json().contains("\"traceEvents\":[]"));
    }

    #[test]
    fn spans_balance_and_timestamps_are_monotone() {
        let t = TraceCtx::new("t0");
        {
            let _outer = t.span(0, "outer");
            let _inner = t.span(0, "inner");
            t.instant(0, "tick");
        }
        t.counter(0, "n", 7);
        let json = t.to_chrome_json();
        assert!(json.contains("\"trace_id\":\"t0\""));
        assert!(json.contains("\"name\":\"outer\""));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2);
        assert_eq!(b, e, "balanced B/E pairs: {json}");
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        // Repeated renders are byte-identical (rendering never mutates).
        assert_eq!(json, t.to_chrome_json());
        // ts values are non-decreasing in document order (one track).
        let mut last = -1.0f64;
        for part in json.split("\"ts\":").skip(1) {
            let v: f64 = part
                .split(['}', ','])
                .next()
                .unwrap()
                .parse()
                .expect("ts is a number");
            assert!(v >= last, "ts must be monotone: {json}");
            last = v;
        }
    }

    #[test]
    fn open_spans_get_synthesized_ends_at_render() {
        let t = TraceCtx::new("t1");
        t.begin(0, "never-closed");
        t.begin(3, "worker-open");
        let json = t.to_chrome_json();
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "{json}"
        );
        // Worker track metadata was emitted for tid 3 (worker-2).
        assert!(json.contains("\"worker-2\""), "{json}");
        assert!(json.contains("\"driver\""), "{json}");
    }

    #[test]
    fn overflow_drops_whole_spans_and_counts_them() {
        let t = TraceCtx::with_capacity("t2", 4);
        for i in 0..6 {
            let s = t.span(0, "s");
            s.end_with(&[("i", i)]);
        }
        // Capacity 4: two whole spans recorded (B+E each), the later
        // Begins dropped along with their Ends.
        assert_eq!(t.events_recorded(), 4);
        assert_eq!(t.events_dropped(), 4);
        let json = t.to_chrome_json();
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        assert!(json.contains("\"dropped_events\":4"));
    }

    #[test]
    fn summary_reports_self_time() {
        let t = TraceCtx::new("t3");
        {
            let _outer = t.span(0, "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = t.span(0, "inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let s = t.summary();
        assert!(s.starts_with("trace t3"), "{s}");
        assert!(s.contains("outer") && s.contains("inner"), "{s}");
        // outer sorts first (largest total), and its self time is less
        // than its total (inner is subtracted).
        let outer_pos = s.find("outer").unwrap();
        let inner_pos = s.find("inner").unwrap();
        assert!(outer_pos < inner_pos, "slowest-first ordering: {s}");
    }

    #[test]
    fn end_with_attaches_args() {
        let t = TraceCtx::new("t4");
        let s = t.span_with(2, "solver.query", &[("stage", 1)]);
        s.end_with(&[("conflicts", 3), ("decisions", 9)]);
        let json = t.to_chrome_json();
        assert!(json.contains("\"stage\":1"), "{json}");
        assert!(json.contains("\"conflicts\":3,\"decisions\":9"), "{json}");
    }
}
