//! Counters, gauges and log₂-bucket histograms.
//!
//! All metric values are integers. Counters saturate instead of wrapping —
//! a telemetry subsystem must never panic or silently wrap into nonsense
//! when a workload runs long enough to exhaust 64 bits.

/// A monotonically increasing counter (saturating).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Increment by `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&mut self, v: i64) {
        self.value = v;
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value
    }
}

/// Number of histogram buckets: one per possible bit-length of a `u64`
/// (0 for the value 0, then 1..=64).
pub const BUCKETS: usize = 65;

/// A log₂-bucket histogram over `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i` (1 ≤ i ≤ 64) holds values in
/// `[2^(i-1), 2^i)`. This gives order-of-magnitude resolution over the full
/// `u64` range with a fixed 65-slot footprint — the right shape for solver
/// effort distributions (decisions, conflicts, propagations), which span
/// many decades across queries.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index a value falls into.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value reported for percentiles).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`q` in `[0, 1]`): the inclusive upper bound
    /// of the first bucket at which the cumulative sample count reaches
    /// `ceil(q · count)`. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b);
            if cum >= target {
                // Don't report an upper bound beyond the observed max.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Rebuild a histogram from snapshot parts: the sparse non-empty
    /// buckets plus the exact `sum`/`min`/`max` (which buckets alone
    /// cannot recover). `min` uses the snapshot convention of 0-when-empty.
    /// The inverse of [`Histogram::nonzero_buckets`] plus the aggregate
    /// accessors, used when merging snapshots that crossed a wire.
    pub fn from_sparse(buckets: &[(usize, u64)], sum: u64, min: u64, max: u64) -> Histogram {
        let mut h = Histogram::default();
        for &(i, c) in buckets {
            if i < BUCKETS {
                h.buckets[i] = h.buckets[i].saturating_add(c);
                h.count = h.count.saturating_add(c);
            }
        }
        h.sum = sum;
        h.max = max;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h
    }

    /// Fold `other`'s samples into `self`: buckets and totals add
    /// (saturating), `min`/`max` widen. Equivalent to replaying every
    /// sample of `other` into `self`, so merge is associative and
    /// commutative — the property the shard coordinator's snapshot
    /// fan-in relies on.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket index, sample count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "counters must saturate, not wrap");
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let mut g = Gauge::default();
        g.set(42);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_boundaries() {
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..8 → bucket 3; …
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds are inclusive and aligned to powers of two minus one.
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Each value is ≤ the upper bound of its own bucket.
        for v in [0u64, 1, 2, 3, 4, 5, 100, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "{v}");
        }
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        // Buckets: 0→[0], 1→[1], 2→[2,3], 7→[100].
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (7, 1)]);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Exactly half the samples are ≤ 50; p50's bucket is [32,64) → 63.
        assert_eq!(h.percentile(0.5), 63);
        assert_eq!(h.percentile(0.0), 1); // clamp to first sample's bucket
        assert_eq!(h.percentile(1.0), 100); // clipped to the observed max
        assert!(h.percentile(0.99) >= 64);
        // Monotone in q.
        let mut last = 0;
        for i in 0..=10 {
            let p = h.percentile(i as f64 / 10.0);
            assert!(p >= last, "percentile must be monotone");
            last = p;
        }
    }

    #[test]
    fn merge_equals_replaying_samples() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [0u64, 1, 5, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 1000, 2] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.nonzero_buckets(), all.nonzero_buckets());
        assert_eq!(a.percentile(0.9), all.percentile(0.9));
    }

    #[test]
    fn from_sparse_round_trips() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        let back = Histogram::from_sparse(&h.nonzero_buckets(), h.sum(), h.min(), h.max());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
        // Empty round-trip keeps the 0-when-empty min convention.
        let empty = Histogram::from_sparse(&[], 0, 0, 0);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
