//! Hierarchical spans: RAII guard timers with parent/child nesting.
//!
//! Spans aggregate by `(parent, name)`: entering `check.solve` twenty times
//! under the same parent produces **one** node with `count == 20` and the
//! summed duration — exactly the shape the paper's per-phase breakdowns
//! (Figures 9–11) need, and stable enough to snapshot-test.

use crate::Collector;
use std::time::{Duration, Instant};

/// One aggregated node in the span tree (arena-indexed).
#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    /// Phase label, e.g. `"check.solve"`.
    pub(crate) name: String,
    /// Arena index of the parent (the root is its own parent).
    pub(crate) parent: usize,
    /// Arena indices of children, in first-entry order.
    pub(crate) children: Vec<usize>,
    /// Number of completed enters.
    pub(crate) count: u64,
    /// Summed wall-clock across completed enters.
    pub(crate) total: Duration,
    /// Currently-open guards on this node (re-entrancy depth).
    pub(crate) open: u32,
}

impl SpanNode {
    pub(crate) fn new(name: &str, parent: usize) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            count: 0,
            total: Duration::ZERO,
            open: 0,
        }
    }
}

/// RAII timer for one span entry. Records into the collector on drop (or
/// explicitly via [`SpanGuard::finish`], which also returns the elapsed
/// time so callers can populate report fields from the same measurement).
#[derive(Debug)]
#[must_use = "a span measures nothing unless it is held for the duration of the phase"]
pub struct SpanGuard {
    collector: Collector,
    pub(crate) idx: usize,
    start: Instant,
    done: bool,
}

impl SpanGuard {
    pub(crate) fn new(collector: Collector, idx: usize) -> SpanGuard {
        SpanGuard {
            collector,
            idx,
            start: Instant::now(),
            done: false,
        }
    }

    /// Close the span now and return its elapsed wall-clock. The same
    /// duration is added to the collector's aggregate for this node.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        if self.done {
            return Duration::ZERO;
        }
        self.done = true;
        let elapsed = self.start.elapsed();
        self.collector.exit_span(self.idx, elapsed);
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}
