//! Structured event log with levels and an optional stderr sink.

/// Event severity, ordered from chattiest to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-iteration diagnostics (per-class solves, per-neighborhood work).
    Trace,
    /// Phase-level diagnostics.
    Debug,
    /// Milestones (run started, verdict reached).
    Info,
    /// Degraded but recoverable situations.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// Lower-case label, as emitted in JSON and on stderr.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl Level {
    /// Inverse of [`Level::as_str`], for reading snapshots back off a wire.
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "trace" => Level::Trace,
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the collector's epoch.
    pub t_ns: u64,
    /// Severity.
    pub level: Level,
    /// Short machine-friendly name, e.g. `"check.verdict"`.
    pub name: String,
    /// Free-form human-readable detail.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn labels() {
        assert_eq!(Level::Info.as_str(), "info");
        assert_eq!(Level::Error.to_string(), "error");
    }
}
