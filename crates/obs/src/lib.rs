#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-obs
//!
//! Zero-dependency tracing + metrics for the Jinjing reproduction. The
//! paper's whole argument is *measured* safety-at-speed — §6's evaluation
//! reports per-phase wall-clock splits and credits each optimization with
//! order-of-magnitude solver-effort reductions — so the engine needs
//! first-class instrumentation rather than ad-hoc stopwatches.
//!
//! Four pieces, all built on `std` alone (the build environment is
//! offline; this crate must never grow an external dependency):
//!
//! - **Spans** ([`SpanGuard`]): RAII guard timers with parent/child
//!   nesting. Same-named spans under the same parent aggregate (count +
//!   total), so per-class solver loops collapse into one stable node.
//! - **Metrics** ([`metrics`]): saturating counters, gauges, and
//!   log₂-bucket [`metrics::Histogram`]s with percentile queries — used for
//!   per-query solver effort distributions (decisions, conflicts, …).
//! - **Events** ([`event`]): a leveled structured log with an optional
//!   stderr sink (`JINJING_TRACE=1` or the CLI's `--trace`).
//! - **Snapshots** ([`Snapshot`]): a point-in-time copy of everything,
//!   rendered to strict JSON by the hand-rolled [`json`] writer with
//!   stable (sorted) key ordering so outputs are diffable.
//!
//! A [`Collector`] is a cheap cloneable handle; every clone shares the same
//! underlying store, which is how one collector threads through
//! `check`/`fix`/`generate`, the CDCL solver, the CLI and the bench
//! harness. Span *nesting* (the [`Collector::span`] guard stack) assumes
//! spans are entered and exited on one thread — the engine's driver
//! thread. Worker threads in the parallel query engine (`jinjing-par`)
//! never open guards; they time their work with bare [`Instant`]s and the
//! driver folds the measurements in deterministic order via
//! [`Collector::record_span`], which merges externally-measured
//! aggregates under the currently open span without touching the stack.
//! Counters, gauges, histograms and events are safe from any thread.

pub mod event;
pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use event::{Event, Level};
pub use metrics::Histogram;
pub use span::SpanGuard;
pub use trace::{trace_id_of, TraceCtx, TraceSpan};

use json::JsonWriter;
use metrics::{Counter, Gauge};
use span::SpanNode;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cap on stored events; beyond it events still hit the stderr sink but are
/// dropped from snapshots (counted in the `obs.events_dropped` counter).
const MAX_EVENTS: usize = 4096;

/// `true` when the `JINJING_TRACE` environment variable asks for the
/// stderr event sink (any value except empty / `0`).
pub fn trace_env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("JINJING_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

#[derive(Debug)]
struct Inner {
    /// Span arena; index 0 is the synthetic root.
    spans: Vec<SpanNode>,
    /// Stack of open span indices (root is always at the bottom).
    stack: Vec<usize>,
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<Event>,
    events_dropped: u64,
    /// Mirror events to stderr as they happen.
    trace: bool,
    /// Event-timestamp origin.
    epoch: Instant,
    /// Per-request flight recorder; disabled (no-op) by default. When
    /// enabled, guard spans and events are mirrored onto its driver
    /// track (tid 0).
    trace_ctx: TraceCtx,
}

impl Inner {
    fn new(trace: bool) -> Inner {
        Inner {
            spans: vec![SpanNode::new("root", 0)],
            stack: vec![0],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            trace,
            epoch: Instant::now(),
            trace_ctx: TraceCtx::disabled(),
        }
    }
}

/// Shared handle to a tracing + metrics store. Clones share state.
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// Fresh collector. The stderr event sink starts enabled iff the
    /// `JINJING_TRACE` environment variable is set (see
    /// [`trace_env_enabled`]).
    pub fn new() -> Collector {
        Collector::with_trace(trace_env_enabled())
    }

    /// Fresh collector with the stderr sink explicitly on or off.
    pub fn with_trace(trace: bool) -> Collector {
        Collector {
            inner: Arc::new(Mutex::new(Inner::new(trace))),
        }
    }

    /// `true` if `self` and `other` share the same underlying store.
    pub fn same_store(&self, other: &Collector) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Never poison-panic inside telemetry: recover the inner value.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enable or disable the stderr event sink (the CLI's `--trace`).
    pub fn set_trace(&self, on: bool) {
        self.lock().trace = on;
    }

    /// Attach a per-request flight recorder (see [`trace::TraceCtx`]).
    /// Guard spans ([`Collector::span`]) and events mirror onto its
    /// driver track (tid 0) from then on; a disabled context detaches.
    pub fn attach_trace_ctx(&self, ctx: TraceCtx) {
        self.lock().trace_ctx = ctx;
    }

    /// The attached flight-recorder context (disabled no-op by default).
    /// Cloning is cheap; callers hand clones to worker threads to emit
    /// worker-track events.
    pub fn trace_ctx(&self) -> TraceCtx {
        self.lock().trace_ctx.clone()
    }

    // ---- Spans. ----

    /// Enter a span named `name` under the currently open span. Returns the
    /// RAII guard; the span closes (and records) when the guard drops or
    /// [`SpanGuard::finish`] is called.
    pub fn span(&self, name: &str) -> SpanGuard {
        let (idx, tc) = {
            let mut g = self.lock();
            let parent = *g.stack.last().expect("root is never popped");
            let existing = g.spans[parent]
                .children
                .iter()
                .copied()
                .find(|&c| g.spans[c].parent == parent && g.spans[c].name == name);
            let idx = match existing {
                Some(i) => i,
                None => {
                    let i = g.spans.len();
                    g.spans.push(SpanNode::new(name, parent));
                    g.spans[parent].children.push(i);
                    i
                }
            };
            g.spans[idx].open += 1;
            g.stack.push(idx);
            let tc = g.trace_ctx.enabled().then(|| g.trace_ctx.clone());
            (idx, tc)
        };
        if let Some(tc) = tc {
            tc.begin(0, name);
        }
        SpanGuard::new(self.clone(), idx)
    }

    /// Close a span opened by [`Collector::span`] (called by the guard).
    pub(crate) fn exit_span(&self, idx: usize, elapsed: Duration) {
        let tc = {
            let mut g = self.lock();
            g.spans[idx].count = g.spans[idx].count.saturating_add(1);
            g.spans[idx].total += elapsed;
            g.spans[idx].open = g.spans[idx].open.saturating_sub(1);
            // Pop the stack down to (and including) this span. Guards are
            // RAII so this is normally the top entry; tolerate skipped pops
            // from early returns that dropped guards out of declaration
            // order.
            let mut pops = 0u32;
            while let Some(&top) = g.stack.last() {
                if top == 0 {
                    break; // never pop the root
                }
                g.stack.pop();
                pops += 1;
                if top == idx {
                    break;
                }
            }
            (pops > 0 && g.trace_ctx.enabled()).then(|| (g.trace_ctx.clone(), pops))
        };
        if let Some((tc, pops)) = tc {
            // Mirror every popped guard so the recorder's driver-track
            // stack stays aligned with the span stack.
            for _ in 0..pops {
                tc.end(0);
            }
        }
    }

    /// Merge externally-measured span aggregates under the currently open
    /// span, without pushing the guard stack.
    ///
    /// This is the bridge between worker threads and the span tree: a
    /// worker times its unit of work with a bare [`Instant`], the driver
    /// collects `(count, total)` per logical span name and records them
    /// here *in deterministic order*. Same-named entries under the same
    /// parent aggregate exactly like re-entered [`Collector::span`]
    /// guards, so downstream consumers (snapshots, [`Collector::span_total`])
    /// cannot tell merged aggregates from guard-recorded ones.
    ///
    /// `count == 0` still creates the node (with zero totals) so span-tree
    /// shape stays stable across runs that happen to record no work.
    pub fn record_span(&self, name: &str, count: u64, total: Duration) {
        let mut g = self.lock();
        let parent = *g.stack.last().expect("root is never popped");
        let existing = g.spans[parent]
            .children
            .iter()
            .copied()
            .find(|&c| g.spans[c].parent == parent && g.spans[c].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = g.spans.len();
                g.spans.push(SpanNode::new(name, parent));
                g.spans[parent].children.push(i);
                i
            }
        };
        g.spans[idx].count = g.spans[idx].count.saturating_add(count);
        g.spans[idx].total += total;
    }

    /// Total recorded wall-clock across all completed entries of the named
    /// span, summed over every position in the tree.
    pub fn span_total(&self, name: &str) -> Duration {
        let g = self.lock();
        g.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total)
            .sum()
    }

    // ---- Metrics. ----

    /// Increment the named counter (created on first use; saturating).
    pub fn counter_add(&self, name: &str, n: u64) {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .add(n);
    }

    /// Read a counter (0 if never touched).
    pub fn counter_get(&self, name: &str) -> u64 {
        self.lock().counters.get(name).map_or(0, Counter::get)
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, v: i64) {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .set(v);
    }

    /// Record one sample into the named histogram.
    pub fn histogram_record(&self, name: &str, v: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Sum of all samples in the named histogram (0 when absent).
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.lock().histograms.get(name).map_or(0, Histogram::sum)
    }

    /// Sample count of the named histogram (0 when absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.lock().histograms.get(name).map_or(0, Histogram::count)
    }

    // ---- Events. ----

    /// Record a structured event; mirrored to stderr when tracing is on,
    /// and onto the flight recorder's driver track when one is attached.
    pub fn event(&self, level: Level, name: &str, message: &str) {
        let tc = {
            let mut g = self.lock();
            let t_ns = g.epoch.elapsed().as_nanos() as u64;
            if g.trace {
                eprintln!(
                    "[jinjing {:>5} +{:>9.3}ms] {name}: {message}",
                    level,
                    t_ns as f64 / 1e6
                );
            }
            if g.events.len() < MAX_EVENTS {
                g.events.push(Event {
                    t_ns,
                    level,
                    name: name.to_string(),
                    message: message.to_string(),
                });
            } else {
                g.events_dropped = g.events_dropped.saturating_add(1);
            }
            g.trace_ctx.enabled().then(|| g.trace_ctx.clone())
        };
        if let Some(tc) = tc {
            tc.instant_msg(0, name, message);
        }
    }

    // ---- Snapshots. ----

    /// Point-in-time copy of everything recorded so far. Open spans
    /// contribute their completed entries only.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        fn build(spans: &[SpanNode], idx: usize) -> SpanSnapshot {
            let n = &spans[idx];
            SpanSnapshot {
                name: n.name.clone(),
                count: n.count,
                total_ns: n.total.as_nanos() as u64,
                children: n.children.iter().map(|&c| build(spans, c)).collect(),
            }
        }
        let mut counters: Vec<(String, u64)> = g
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut synthetic = false;
        if g.events_dropped > 0 {
            counters.push(("obs.events_dropped".to_string(), g.events_dropped));
            synthetic = true;
        }
        // Same saturation accounting for the flight-recorder ring: a
        // truncated trace must be visible wherever the snapshot lands
        // (`--metrics-out`, the daemon's `/metrics`).
        let trace_dropped = g.trace_ctx.events_dropped();
        if trace_dropped > 0 {
            counters.push(("obs.trace_events_dropped".to_string(), trace_dropped));
            synthetic = true;
        }
        if synthetic {
            counters.sort();
        }
        Snapshot {
            spans: build(&g.spans, 0),
            counters,
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect(),
            events: g.events.clone(),
        }
    }
}

/// One node of the snapshot span tree.
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Span label.
    pub name: String,
    /// Completed entries.
    pub count: u64,
    /// Summed wall-clock of completed entries, in nanoseconds.
    pub total_ns: u64,
    /// Child spans, in first-entry order.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// Depth-first search for the first span with the given name.
    pub fn find(&self, name: &str) -> Option<&SpanSnapshot> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanSnapshot> {
        self.children.iter().find(|c| c.name == name)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("children");
        w.begin_array();
        for c in &self.children {
            c.write_json(w);
        }
        w.end_array();
        w.key("count");
        w.u64(self.count);
        w.key("name");
        w.string(&self.name);
        w.key("total_ns");
        w.u64(self.total_ns);
        w.end_object();
    }
}

/// Frozen summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty log₂ buckets as `(bucket index, count)`.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p99: h.percentile(0.99),
            buckets: h.nonzero_buckets(),
        }
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("buckets");
        w.begin_array();
        for &(i, c) in &self.buckets {
            w.begin_array();
            w.u64(i as u64);
            w.u64(c);
            w.end_array();
        }
        w.end_array();
        w.key("count");
        w.u64(self.count);
        w.key("max");
        w.u64(self.max);
        w.key("mean");
        w.f64(self.mean);
        w.key("min");
        w.u64(self.min);
        w.key("p50");
        w.u64(self.p50);
        w.key("p90");
        w.u64(self.p90);
        w.key("p99");
        w.u64(self.p99);
        w.key("sum");
        w.u64(self.sum);
        w.end_object();
    }
}

/// A point-in-time copy of a [`Collector`]'s state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The span tree (root at the top).
    pub spans: SpanSnapshot,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Recorded events, oldest first.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// An empty snapshot (no spans entered, no metrics).
    pub fn empty() -> Snapshot {
        Collector::with_trace(false).snapshot()
    }

    /// Depth-first search of the span tree.
    pub fn find_span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.find(name)
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), for a daemon's `GET /metrics` endpoint.
    ///
    /// Mapping:
    /// - counters → `jinjing_<name> <v>` with `# TYPE … counter`;
    /// - gauges → the same with `# TYPE … gauge`;
    /// - histograms → a conformant Prometheus histogram: cumulative
    ///   `_bucket{le="…"}` series derived from the log₂ buckets (each
    ///   `le` is the bucket's inclusive upper bound), a closing
    ///   `_bucket{le="+Inf"}`, then `_sum` and `_count` — so server-side
    ///   quantile functions (`histogram_quantile`) work;
    /// - spans → two metric families, `jinjing_span_seconds_total` and
    ///   `jinjing_span_entries_total`, one sample per tree node with the
    ///   node's `root/…` path as the `path` label.
    ///
    /// Metric names are sanitized (`.` and any other non-alphanumeric
    /// byte become `_`); label values escape `\`, `"` and newlines as
    /// the format requires. Families are emitted in sorted-name order,
    /// so the rendering is as deterministic as the snapshot itself.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len());
            for (i, c) in name.chars().enumerate() {
                let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
                out.push(if ok { c } else { '_' });
            }
            out
        }
        fn escape_label(v: &str) -> String {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        use std::fmt::Write;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = format!("jinjing_{}", sanitize(k));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = format!("jinjing_{}", sanitize(k));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, h) in &self.histograms {
            let n = format!("jinjing_{}", sanitize(k));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(i, c) in &h.buckets {
                cumulative += c;
                let le = metrics::bucket_upper(i);
                if le == u64::MAX {
                    // The open-ended top bucket folds into +Inf below.
                    continue;
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        // Spans: flatten the tree, one sample per node, path-labeled.
        fn walk(node: &SpanSnapshot, prefix: &str, rows: &mut Vec<(String, u64, u64)>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            rows.push((path.clone(), node.count, node.total_ns));
            for c in &node.children {
                walk(c, &path, rows);
            }
        }
        let mut rows = Vec::new();
        walk(&self.spans, "", &mut rows);
        let _ = writeln!(out, "# TYPE jinjing_span_seconds_total counter");
        for (path, _, total_ns) in &rows {
            let _ = writeln!(
                out,
                "jinjing_span_seconds_total{{path=\"{}\"}} {}",
                escape_label(path),
                *total_ns as f64 / 1e9
            );
        }
        let _ = writeln!(out, "# TYPE jinjing_span_entries_total counter");
        for (path, count, _) in &rows {
            let _ = writeln!(
                out,
                "jinjing_span_entries_total{{path=\"{}\"}} {count}",
                escape_label(path)
            );
        }
        out
    }

    /// Render the whole snapshot as strict JSON with stable key ordering.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (k, v) in &self.counters {
            w.key(k);
            w.u64(*v);
        }
        w.end_object();
        w.key("events");
        w.begin_array();
        for e in &self.events {
            w.begin_object();
            w.key("level");
            w.string(e.level.as_str());
            w.key("message");
            w.string(&e.message);
            w.key("name");
            w.string(&e.name);
            w.key("t_ns");
            w.u64(e.t_ns);
            w.end_object();
        }
        w.end_array();
        w.key("gauges");
        w.begin_object();
        for (k, v) in &self.gauges {
            w.key(k);
            w.i64(*v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (k, h) in &self.histograms {
            w.key(k);
            h.write_json(&mut w);
        }
        w.end_object();
        w.key("spans");
        self.spans.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Fold `other` into `self`, as if both collectors had recorded into
    /// one store:
    ///
    /// - **counters** add (saturating), union of names;
    /// - **gauges** take the maximum — gauges are last-write-wins level
    ///   readings, and the peak across shards is the only combination
    ///   that stays associative and order-insensitive;
    /// - **histograms** merge bucket-wise (equivalent to replaying every
    ///   sample), with the derived stats (mean, percentiles) recomputed
    ///   from the merged buckets;
    /// - **spans** take the disjoint-union of the trees: same-named
    ///   children under the same parent merge recursively (counts and
    ///   totals add), and children are re-ordered by name so the result
    ///   does not depend on merge order;
    /// - **events** union as a multiset, ordered by `(t_ns, level, name,
    ///   message)`.
    ///
    /// Merge is associative and order-insensitive on the canonical
    /// [`Snapshot::to_json`] rendering — the contract the shard
    /// coordinator's fan-in relies on (and that the integration suite
    /// property-tests).
    pub fn merge(&mut self, other: &Snapshot) {
        fn merge_span(into: &mut SpanSnapshot, from: &SpanSnapshot) {
            into.count = into.count.saturating_add(from.count);
            into.total_ns = into.total_ns.saturating_add(from.total_ns);
            for fc in &from.children {
                match into.children.iter_mut().find(|c| c.name == fc.name) {
                    Some(mine) => merge_span(mine, fc),
                    None => into.children.push(fc.clone()),
                }
            }
        }
        fn sort_all(node: &mut SpanSnapshot) {
            node.children.sort_by(|a, b| a.name.cmp(&b.name));
            for c in &mut node.children {
                sort_all(c);
            }
        }
        merge_span(&mut self.spans, &other.spans);
        // Normalize the whole tree (including subtrees cloned from `other`)
        // so the result is independent of merge order.
        sort_all(&mut self.spans);

        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (k, v) in &other.counters {
            let slot = counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> = self.gauges.drain(..).collect();
        for (k, v) in &other.gauges {
            let slot = gauges.entry(k.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, Histogram> = self
            .histograms
            .drain(..)
            .map(|(k, h)| {
                (
                    k,
                    Histogram::from_sparse(&h.buckets, h.sum, h.min, h.max),
                )
            })
            .collect();
        for (k, h) in &other.histograms {
            let theirs = Histogram::from_sparse(&h.buckets, h.sum, h.min, h.max);
            histograms
                .entry(k.clone())
                .or_default()
                .merge(&theirs);
        }
        self.histograms = histograms
            .into_iter()
            .map(|(k, h)| (k, HistogramSnapshot::of(&h)))
            .collect();

        self.events.extend(other.events.iter().cloned());
        self.events.sort_by(|a, b| {
            (a.t_ns, a.level, &a.name, &a.message).cmp(&(b.t_ns, b.level, &b.name, &b.message))
        });
    }

    /// Parse a snapshot back from its [`Snapshot::to_json`] rendering.
    ///
    /// The inverse the shard coordinator needs: each backend ships its
    /// snapshot as canonical JSON; the coordinator parses and
    /// [`Snapshot::merge`]s them. Unknown keys are ignored so snapshots
    /// can gain fields without breaking older coordinators.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        Snapshot::from_json_value(&json::parse(text)?)
    }

    /// [`Snapshot::from_json`] over an already-parsed [`json::Json`]
    /// value — what the shard coordinator uses when the snapshot is
    /// embedded inside a larger wire document.
    pub fn from_json_value(doc: &json::Json) -> Result<Snapshot, String> {
        fn span_of(v: &json::Json) -> Result<SpanSnapshot, String> {
            Ok(SpanSnapshot {
                name: v
                    .get("name")
                    .and_then(|x| x.as_str())
                    .ok_or("span missing name")?
                    .to_string(),
                count: v.get("count").and_then(json::Json::as_u64).unwrap_or(0),
                total_ns: v.get("total_ns").and_then(json::Json::as_u64).unwrap_or(0),
                children: v
                    .get("children")
                    .map(json::Json::elements)
                    .unwrap_or_default()
                    .iter()
                    .map(span_of)
                    .collect::<Result<_, _>>()?,
            })
        }
        let spans = match doc.get("spans") {
            Some(v) => span_of(v)?,
            None => Snapshot::empty().spans,
        };
        let counters = doc
            .get("counters")
            .map(json::Json::members)
            .unwrap_or_default()
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("counter {k} is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = doc
            .get("gauges")
            .map(json::Json::members)
            .unwrap_or_default()
            .iter()
            .map(|(k, v)| {
                v.as_i64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("gauge {k} is not an i64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = doc
            .get("histograms")
            .map(json::Json::members)
            .unwrap_or_default()
            .iter()
            .map(|(k, v)| {
                let buckets = v
                    .get("buckets")
                    .map(json::Json::elements)
                    .unwrap_or_default()
                    .iter()
                    .map(|pair| {
                        let xs = pair.elements();
                        match (
                            xs.first().and_then(json::Json::as_u64),
                            xs.get(1).and_then(json::Json::as_u64),
                        ) {
                            (Some(i), Some(c)) => Ok((i as usize, c)),
                            _ => Err(format!("histogram {k} has a malformed bucket")),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let grab = |key: &str| v.get(key).and_then(json::Json::as_u64).unwrap_or(0);
                let h = Histogram::from_sparse(&buckets, grab("sum"), grab("min"), grab("max"));
                Ok((k.clone(), HistogramSnapshot::of(&h)))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let events = doc
            .get("events")
            .map(json::Json::elements)
            .unwrap_or_default()
            .iter()
            .map(|e| {
                Ok(Event {
                    t_ns: e.get("t_ns").and_then(json::Json::as_u64).unwrap_or(0),
                    level: e
                        .get("level")
                        .and_then(|x| x.as_str())
                        .and_then(Level::parse)
                        .ok_or("event missing level")?,
                    name: e
                        .get("name")
                        .and_then(|x| x.as_str())
                        .unwrap_or_default()
                        .to_string(),
                    message: e
                        .get("message")
                        .and_then(|x| x.as_str())
                        .unwrap_or_default()
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot {
            spans,
            counters,
            gauges,
            histograms,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let c = Collector::with_trace(false);
        {
            let _outer = c.span("check");
            for _ in 0..3 {
                let _inner = c.span("check.solve");
            }
            let _other = c.span("check.paths");
        }
        let snap = c.snapshot();
        let root = &snap.spans;
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 1);
        let check = root.child("check").expect("check under root");
        assert_eq!(check.count, 1);
        // Same-named entries aggregate into one node with count 3.
        let solve = check.child("check.solve").expect("solve under check");
        assert_eq!(solve.count, 3);
        assert!(solve.children.is_empty());
        // Sibling order is first-entry order.
        let names: Vec<&str> = check.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["check.solve", "check.paths"]);
    }

    #[test]
    fn finish_returns_the_recorded_duration() {
        let c = Collector::with_trace(false);
        let g = c.span("phase");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d = g.finish();
        assert!(d >= std::time::Duration::from_millis(2));
        assert_eq!(c.span_total("phase"), d, "guard and collector agree");
    }

    #[test]
    fn sibling_spans_after_reentry_attach_to_the_right_parent() {
        let c = Collector::with_trace(false);
        {
            let _a = c.span("a");
            let _b = c.span("b");
        } // both closed
        {
            let _a = c.span("a"); // re-enters the same node
            let _c2 = c.span("c");
        }
        let snap = c.snapshot();
        let a = snap.spans.child("a").unwrap();
        assert_eq!(a.count, 2);
        let names: Vec<&str> = a.children.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn span_total_sums_across_tree_positions() {
        let c = Collector::with_trace(false);
        {
            let _x = c.span("x");
            let _s = c.span("shared");
        }
        {
            let _y = c.span("y");
            let _s = c.span("shared");
        }
        let snap = c.snapshot();
        // Two distinct nodes named "shared"…
        assert_eq!(
            snap.spans
                .child("x")
                .unwrap()
                .child("shared")
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.spans
                .child("y")
                .unwrap()
                .child("shared")
                .unwrap()
                .count,
            1
        );
        // …and span_total sums both.
        assert!(c.span_total("shared") >= Duration::ZERO);
    }

    #[test]
    fn record_span_merges_under_open_span() {
        let c = Collector::with_trace(false);
        {
            let _outer = c.span("check");
            // Driver folds worker-measured aggregates: two batches into the
            // same logical child node.
            c.record_span("check.solve", 3, Duration::from_nanos(300));
            c.record_span("check.solve", 2, Duration::from_nanos(200));
            // Zero-count record: shape only.
            c.record_span("check.paths", 0, Duration::ZERO);
            // A real guard into the same node aggregates with the merged
            // totals.
            c.span("check.solve").finish();
        }
        let snap = c.snapshot();
        let check = snap.spans.child("check").unwrap();
        let solve = check.child("check.solve").unwrap();
        assert_eq!(solve.count, 6);
        assert!(solve.total_ns >= 500);
        let paths = check.child("check.paths").unwrap();
        assert_eq!((paths.count, paths.total_ns), (0, 0));
        // record_span must not disturb the guard stack: "check" closed
        // normally with count 1.
        assert_eq!(check.count, 1);
        assert_eq!(c.span_total("check.solve"), {
            let mut d = Duration::from_nanos(500);
            d += Duration::from_nanos(solve.total_ns - 500);
            d
        });
    }

    #[test]
    fn clones_share_the_store() {
        let a = Collector::with_trace(false);
        let b = a.clone();
        assert!(a.same_store(&b));
        b.counter_add("n", 2);
        a.counter_add("n", 3);
        assert_eq!(a.counter_get("n"), 5);
        assert!(!a.same_store(&Collector::with_trace(false)));
    }

    #[test]
    fn metrics_round_trip_through_snapshot() {
        let c = Collector::with_trace(false);
        c.counter_add("solver.queries", 7);
        c.gauge_set("wan.devices", -1);
        c.gauge_set("wan.devices", 40);
        for v in [1u64, 2, 3, 1000] {
            c.histogram_record("solver.decisions", v);
        }
        let s = c.snapshot();
        assert_eq!(s.counter("solver.queries"), 7);
        assert_eq!(s.gauges, vec![("wan.devices".to_string(), 40)]);
        let h = s.histogram("solver.decisions").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.max, 1000);
        assert_eq!(c.histogram_sum("solver.decisions"), 1006);
        assert_eq!(c.histogram_count("solver.decisions"), 4);
    }

    #[test]
    fn json_snapshot_is_stable_and_escaped() {
        let c = Collector::with_trace(false);
        // Insert counters out of order: output must be sorted.
        c.counter_add("zeta", 1);
        c.counter_add("alpha", 2);
        c.event(Level::Info, "note", "quote \" backslash \\ newline \n done");
        {
            let _g = c.span("phase.one");
        }
        let json = c.snapshot().to_json();
        // Stable ordering: top-level keys and counter keys sorted.
        let zi = json.find("\"zeta\"").unwrap();
        let ai = json.find("\"alpha\"").unwrap();
        assert!(ai < zi, "counters must be sorted: {json}");
        let order = [
            "\"counters\"",
            "\"events\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"spans\"",
        ];
        let mut last = 0;
        for k in order {
            let i = json.find(k).unwrap_or_else(|| panic!("{k} missing"));
            assert!(i >= last, "top-level keys out of order");
            last = i;
        }
        // Escaping.
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n done"));
        // Two snapshots of the same collector are byte-identical apart from
        // nothing — fully deterministic.
        assert_eq!(json, c.snapshot().to_json());
    }

    #[test]
    fn events_respect_cap() {
        let c = Collector::with_trace(false);
        for i in 0..(MAX_EVENTS + 10) {
            c.event(Level::Trace, "e", &format!("{i}"));
        }
        let s = c.snapshot();
        assert_eq!(s.events.len(), MAX_EVENTS);
        assert_eq!(s.counter("obs.events_dropped"), 10);
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Snapshot::empty();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json
            .contains("\"spans\":{\"children\":[],\"count\":0,\"name\":\"root\",\"total_ns\":0}"));
    }

    #[test]
    fn prometheus_histograms_emit_cumulative_buckets() {
        let c = Collector::with_trace(false);
        // Samples land in log₂ buckets: 0 → bucket 0 (le 0), 1 → bucket
        // 1 (le 1), 5 → bucket 3 (le 7), 1000 → bucket 10 (le 1023).
        for v in [0u64, 1, 5, 1000] {
            c.histogram_record("solver.decisions", v);
        }
        let text = c.snapshot().to_prometheus();
        assert!(text.contains("# TYPE jinjing_solver_decisions histogram"));
        assert!(text.contains("jinjing_solver_decisions_bucket{le=\"0\"} 1"));
        assert!(text.contains("jinjing_solver_decisions_bucket{le=\"1\"} 2"));
        assert!(text.contains("jinjing_solver_decisions_bucket{le=\"7\"} 3"));
        assert!(text.contains("jinjing_solver_decisions_bucket{le=\"1023\"} 4"));
        assert!(text.contains("jinjing_solver_decisions_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("jinjing_solver_decisions_sum 1006"));
        assert!(text.contains("jinjing_solver_decisions_count 4"));
        assert!(
            !text.contains("quantile="),
            "summary quantiles replaced by buckets: {text}"
        );
    }

    #[test]
    fn collector_mirrors_spans_and_events_onto_the_recorder() {
        let c = Collector::with_trace(false);
        let ctx = TraceCtx::new("tmirror");
        c.attach_trace_ctx(ctx.clone());
        assert!(c.trace_ctx().enabled());
        {
            let _outer = c.span("engine.run");
            let _inner = c.span("check");
            c.event(Level::Info, "check.verdict", "consistent");
        }
        c.record_span("check.solve", 3, Duration::from_nanos(30)); // not mirrored
        let json = ctx.to_chrome_json();
        assert!(json.contains("\"name\":\"engine.run\""), "{json}");
        assert!(json.contains("\"name\":\"check\""), "{json}");
        assert!(json.contains("\"check.verdict\""), "{json}");
        assert!(json.contains("\"msg\":\"consistent\""), "{json}");
        assert!(!json.contains("check.solve"), "record_span is aggregate-only");
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        // The aggregate side is untouched by mirroring.
        let snap = c.snapshot();
        assert_eq!(snap.spans.child("engine.run").unwrap().count, 1);
    }

    #[test]
    fn snapshot_reports_trace_ring_drops() {
        let c = Collector::with_trace(false);
        c.attach_trace_ctx(TraceCtx::with_capacity("tdrop", 2));
        for _ in 0..4 {
            c.span("s").finish();
        }
        // The first span fills the 2-slot ring (B+E); the three later
        // Begins drop (their Ends are skipped, not double-counted).
        let snap = c.snapshot();
        assert_eq!(snap.counter("obs.trace_events_dropped"), 3);
        // And it renders into /metrics like any counter.
        assert!(snap
            .to_prometheus()
            .contains("jinjing_obs_trace_events_dropped 3"));
    }

    #[test]
    fn merge_adds_counters_and_unions_names() {
        let a = Collector::with_trace(false);
        a.counter_add("shared", 2);
        a.counter_add("only_a", 1);
        let b = Collector::with_trace(false);
        b.counter_add("shared", 5);
        b.counter_add("only_b", 7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("shared"), 7);
        assert_eq!(m.counter("only_a"), 1);
        assert_eq!(m.counter("only_b"), 7);
        // Result stays name-sorted.
        let names: Vec<&str> = m.counters.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn merge_gauges_take_the_peak() {
        let a = Collector::with_trace(false);
        a.gauge_set("depth", 3);
        let b = Collector::with_trace(false);
        b.gauge_set("depth", -1);
        b.gauge_set("other", -5);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.gauges, vec![("depth".to_string(), 3), ("other".to_string(), -5)]);
    }

    #[test]
    fn merge_histograms_equals_one_collector() {
        let a = Collector::with_trace(false);
        let b = Collector::with_trace(false);
        let all = Collector::with_trace(false);
        for v in [1u64, 5, 9] {
            a.histogram_record("h", v);
            all.histogram_record("h", v);
        }
        for v in [0u64, 1000, 3] {
            b.histogram_record("h", v);
            all.histogram_record("h", v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let merged = m.histogram("h").unwrap();
        let expect = all.snapshot();
        let expect = expect.histogram("h").unwrap();
        assert_eq!(merged.buckets, expect.buckets);
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.sum, expect.sum);
        assert_eq!(merged.min, expect.min);
        assert_eq!(merged.max, expect.max);
        assert_eq!(merged.p99, expect.p99);
        assert!((merged.mean - expect.mean).abs() < 1e-12);
    }

    #[test]
    fn merge_spans_disjoint_union() {
        let a = Collector::with_trace(false);
        {
            let _r = a.span("run");
            a.span("check").finish();
            a.record_span("check.solve", 2, Duration::from_nanos(20));
        }
        let b = Collector::with_trace(false);
        {
            let _r = b.span("run");
            b.span("check").finish();
            b.span("lint").finish();
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let run = m.spans.child("run").expect("run under root");
        assert_eq!(run.count, 2, "same-named spans aggregate");
        let names: Vec<&str> = run.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["check", "check.solve", "lint"], "name-sorted union");
        assert_eq!(run.child("check").unwrap().count, 2);
        assert_eq!(run.child("lint").unwrap().count, 1);
        assert_eq!(run.child("check.solve").unwrap().total_ns, 20);
    }

    #[test]
    fn merge_events_union_in_time_order() {
        let a = Collector::with_trace(false);
        a.event(Level::Info, "a", "first");
        let b = Collector::with_trace(false);
        b.event(Level::Warn, "b", "second");
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab.events.len(), 2);
        assert_eq!(ab.to_json(), ba.to_json(), "event order is merge-order-free");
    }

    #[test]
    fn snapshot_json_round_trips_through_from_json() {
        let c = Collector::with_trace(false);
        c.counter_add("solver.queries", 7);
        c.gauge_set("wan.devices", 40);
        for v in [1u64, 2, 3, 1000] {
            c.histogram_record("solver.decisions", v);
        }
        c.event(Level::Info, "check.verdict", "consistent \"quoted\"");
        {
            let _g = c.span("engine.run");
            c.span("check").finish();
        }
        let snap = c.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back.to_json(), snap.to_json(), "byte-exact round trip");
        assert!(Snapshot::from_json("{]").is_err());
    }

    #[test]
    fn merge_with_empty_is_canonical_identity() {
        let c = Collector::with_trace(false);
        {
            let _r = c.span("run");
            // Enter children out of name order: merge must normalize.
            c.span("zeta").finish();
            c.span("alpha").finish();
        }
        let mut m = c.snapshot();
        m.merge(&Snapshot::empty());
        let run = m.spans.child("run").unwrap();
        let names: Vec<&str> = run.children.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        // And merging empty the other way around gives the same bytes.
        let mut other = Snapshot::empty();
        other.merge(&c.snapshot());
        assert_eq!(other.to_json(), m.to_json());
    }

    #[test]
    fn detached_collector_records_no_trace() {
        let c = Collector::with_trace(false);
        let ctx = TraceCtx::new("tdetach");
        c.attach_trace_ctx(ctx.clone());
        c.span("a").finish();
        c.attach_trace_ctx(TraceCtx::disabled());
        c.span("b").finish();
        let json = ctx.to_chrome_json();
        assert!(json.contains("\"name\":\"a\""));
        assert!(!json.contains("\"name\":\"b\""));
    }
}
